// Package datasets generates the two evaluation workloads of the
// demonstration.
//
// The demo uses (1) the CER dataset — real Irish smart-meter electricity
// consumption series from ISSDA, which is license-gated and cannot be
// redistributed — and (2) the NUMED dataset — tumor-growth series that the
// paper itself generates synthetically from the mathematical models of
// Claret et al. (J. Clin. Onc. 2013).
//
// Following DESIGN.md §5, CER is substituted by an archetype-based
// synthetic generator producing household load curves with the same
// dimensionality, value range and cluster structure (the demo clusters
// load *shapes*), and NUMED is regenerated from the published Claret
// tumor-growth-inhibition model — the same procedure the authors used.
//
// Both generators return ground-truth archetype labels, enabling the
// quality experiments (ARI/NMI against truth) on top of the paper's
// inertia-vs-centralized comparison.
package datasets

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Dataset is a labeled collection of same-length series.
type Dataset struct {
	// Series holds one row per individual.
	Series [][]float64
	// Labels[i] is the ground-truth archetype index of Series[i].
	Labels []int
	// ArchetypeNames names the label values.
	ArchetypeNames []string
	// Dim is the series length.
	Dim int
	// Name identifies the workload in logs and tables.
	Name string
}

// validate checks internal consistency; used by tests.
func (d *Dataset) validate() error {
	if len(d.Series) != len(d.Labels) {
		return errors.New("datasets: series/labels length mismatch")
	}
	for i, s := range d.Series {
		if len(s) != d.Dim {
			return fmt.Errorf("datasets: series %d has dim %d, want %d", i, len(s), d.Dim)
		}
		if d.Labels[i] < 0 || d.Labels[i] >= len(d.ArchetypeNames) {
			return fmt.Errorf("datasets: series %d label %d out of range", i, d.Labels[i])
		}
	}
	return nil
}

// Bounds returns the global min and max across all series.
func (d *Dataset) Bounds() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range d.Series {
		for _, v := range s {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

// NormalizeTo01 rescales all series jointly into [0, 1] (Chiaroscuro
// requires a bounded domain for the DP sensitivity). It returns the
// (offset, scale) transform: normalized = (raw-offset)*scale.
func (d *Dataset) NormalizeTo01() (offset, scale float64) {
	lo, hi := d.Bounds()
	offset = lo
	scale = 1.0
	if hi > lo {
		scale = 1 / (hi - lo)
	}
	for _, s := range d.Series {
		for i := range s {
			s[i] = (s[i] - offset) * scale
		}
	}
	return offset, scale
}

// CEROptions configures the electricity-consumption generator.
type CEROptions struct {
	// N is the number of households.
	N int
	// Dim is the number of samples per series (48 = one day of
	// half-hourly readings, the CER resolution).
	Dim int
	// Seed makes generation deterministic.
	Seed int64
	// NoiseStd is the per-sample Gaussian jitter in kW (default 0.08).
	NoiseStd float64
}

// cerArchetype is one household behaviour class. Curves are built from a
// base load plus Gaussian activity bumps at characteristic hours.
type cerArchetype struct {
	name  string
	base  float64
	bumps []bump // hour in [0,24), width in hours, height in kW
}

type bump struct {
	hour, width, height float64
}

var cerArchetypes = []cerArchetype{
	{name: "low-flat", base: 0.18, bumps: []bump{{19, 2.5, 0.25}}},
	{name: "evening-peak", base: 0.35, bumps: []bump{{8, 1.5, 0.5}, {19.5, 2.0, 1.8}}},
	{name: "morning-evening", base: 0.4, bumps: []bump{{7.5, 1.8, 1.2}, {18.5, 2.2, 1.3}}},
	{name: "business-hours", base: 0.3, bumps: []bump{{12, 4.5, 1.6}}},
	{name: "night-storage", base: 0.45, bumps: []bump{{2.5, 3.0, 2.0}, {19, 1.5, 0.5}}},
	{name: "high-constant", base: 1.6, bumps: []bump{{13, 6.0, 0.6}}},
}

// CER generates a CER-like synthetic household electricity dataset.
func CER(opt CEROptions) (*Dataset, error) {
	if opt.N < 1 {
		return nil, fmt.Errorf("datasets: CER population %d < 1", opt.N)
	}
	if opt.Dim < 2 {
		opt.Dim = 48
	}
	if opt.NoiseStd <= 0 {
		opt.NoiseStd = 0.08
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	d := &Dataset{
		Series: make([][]float64, opt.N),
		Labels: make([]int, opt.N),
		Dim:    opt.Dim,
		Name:   "cer-synthetic",
	}
	for _, a := range cerArchetypes {
		d.ArchetypeNames = append(d.ArchetypeNames, a.name)
	}
	for i := 0; i < opt.N; i++ {
		label := rng.Intn(len(cerArchetypes))
		a := cerArchetypes[label]
		// Per-home variation of magnitude and peak timing.
		ampl := 1 + 0.25*rng.NormFloat64()
		if ampl < 0.3 {
			ampl = 0.3
		}
		shift := 0.6 * rng.NormFloat64() // hours
		s := make([]float64, opt.Dim)
		for t := 0; t < opt.Dim; t++ {
			hour := 24 * float64(t) / float64(opt.Dim)
			v := a.base * ampl
			for _, b := range a.bumps {
				v += b.height * ampl * gaussBump(hour, b.hour+shift, b.width)
			}
			v += opt.NoiseStd * rng.NormFloat64()
			if v < 0 {
				v = 0
			}
			s[t] = v
		}
		d.Series[i] = s
		d.Labels[i] = label
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// gaussBump is a circular (24h-periodic) Gaussian bump.
func gaussBump(hour, center, width float64) float64 {
	d := math.Abs(hour - center)
	if d > 12 {
		d = 24 - d
	}
	return math.Exp(-d * d / (2 * width * width))
}

// TumorOptions configures the tumor-growth generator.
type TumorOptions struct {
	// N is the number of patients.
	N int
	// Weeks is the observation horizon; the demo uses twenty weeks.
	Weeks int
	// Seed makes generation deterministic.
	Seed int64
	// NoiseStd is the relative measurement noise (default 0.03).
	NoiseStd float64
}

// claretParams are the parameters of the Claret et al. tumor-growth-
// inhibition model y(t) = y0·exp(KL·t − (KD·E/λ)·(1 − e^{−λ·t})):
// exponential growth at rate KL, drug kill at initial rate KD·E decaying
// with resistance appearance rate λ.
type claretParams struct {
	name string
	kl   float64 // growth rate (1/week)
	kd   float64 // drug-induced decay rate (1/week)
	lam  float64 // resistance appearance rate (1/week)
}

var tumorArchetypes = []claretParams{
	{name: "responder", kl: 0.015, kd: 0.12, lam: 0.01},
	{name: "relapse", kl: 0.055, kd: 0.25, lam: 0.35},
	{name: "progressor", kl: 0.06, kd: 0.01, lam: 0.05},
	{name: "stable", kl: 0.02, kd: 0.022, lam: 0.02},
}

// TumorGrowth generates a NUMED-like synthetic tumor-size dataset from
// the Claret TGI model, sampled weekly.
func TumorGrowth(opt TumorOptions) (*Dataset, error) {
	if opt.N < 1 {
		return nil, fmt.Errorf("datasets: tumor population %d < 1", opt.N)
	}
	if opt.Weeks < 2 {
		opt.Weeks = 20
	}
	if opt.NoiseStd <= 0 {
		opt.NoiseStd = 0.03
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	d := &Dataset{
		Series: make([][]float64, opt.N),
		Labels: make([]int, opt.N),
		Dim:    opt.Weeks,
		Name:   "numed-claret",
	}
	for _, a := range tumorArchetypes {
		d.ArchetypeNames = append(d.ArchetypeNames, a.name)
	}
	for i := 0; i < opt.N; i++ {
		label := rng.Intn(len(tumorArchetypes))
		a := tumorArchetypes[label]
		y0 := 40 + 40*rng.Float64() // baseline tumor size, mm
		// Per-patient parameter jitter (log-normal-ish).
		kl := a.kl * math.Exp(0.2*rng.NormFloat64())
		kd := a.kd * math.Exp(0.2*rng.NormFloat64())
		lam := a.lam * math.Exp(0.2*rng.NormFloat64())
		s := make([]float64, opt.Weeks)
		for w := 0; w < opt.Weeks; w++ {
			t := float64(w)
			y := y0 * math.Exp(claretExponent(kl, kd, lam, t))
			y *= 1 + opt.NoiseStd*rng.NormFloat64()
			if y < 0 {
				y = 0
			}
			s[w] = y
		}
		d.Series[i] = s
		d.Labels[i] = label
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// claretExponent is the exponent of the closed-form Claret solution.
func claretExponent(kl, kd, lam, t float64) float64 {
	if lam == 0 {
		return kl*t - kd*t
	}
	return kl*t - (kd/lam)*(1-math.Exp(-lam*t))
}

// ByName builds the named dataset with the given size and seed, using
// each generator's default resolution. Recognized names: "cer", "tumor".
func ByName(name string, n int, seed int64) (*Dataset, error) {
	switch name {
	case "cer":
		return CER(CEROptions{N: n, Seed: seed})
	case "tumor":
		return TumorGrowth(TumorOptions{N: n, Seed: seed})
	default:
		return nil, fmt.Errorf("datasets: unknown dataset %q", name)
	}
}
