package datasets

import (
	"math"
	"testing"

	"chiaroscuro/internal/kmeans"
	"chiaroscuro/internal/quality"
)

func TestCERShapeAndDeterminism(t *testing.T) {
	d, err := CER(CEROptions{N: 200, Dim: 48, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Series) != 200 || len(d.Labels) != 200 || d.Dim != 48 {
		t.Fatalf("shape: %d series, %d labels, dim %d", len(d.Series), len(d.Labels), d.Dim)
	}
	if len(d.ArchetypeNames) != 6 {
		t.Fatalf("archetypes = %v", d.ArchetypeNames)
	}
	d2, _ := CER(CEROptions{N: 200, Dim: 48, Seed: 1})
	for i := range d.Series {
		for j := range d.Series[i] {
			if d.Series[i][j] != d2.Series[i][j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	d3, _ := CER(CEROptions{N: 200, Dim: 48, Seed: 2})
	same := true
	for i := range d.Series {
		for j := range d.Series[i] {
			if d.Series[i][j] != d3.Series[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestCERNonNegativeLoad(t *testing.T) {
	d, err := CER(CEROptions{N: 100, Dim: 24, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range d.Series {
		for j, v := range s {
			if v < 0 {
				t.Fatalf("negative consumption at [%d][%d]: %v", i, j, v)
			}
		}
	}
}

func TestCERDefaultsAndValidation(t *testing.T) {
	d, err := CER(CEROptions{N: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Dim != 48 {
		t.Fatalf("default dim = %d, want 48 (half-hourly)", d.Dim)
	}
	if _, err := CER(CEROptions{N: 0}); err == nil {
		t.Fatal("n=0 should error")
	}
}

func TestCERArchetypesAreSeparable(t *testing.T) {
	// The generator must produce clusterable structure: centralized
	// k-means on normalized data should agree with the ground truth
	// labels well above chance (ARI > 0.4).
	d, err := CER(CEROptions{N: 400, Dim: 48, Seed: 5, NoiseStd: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	d.NormalizeTo01()
	res, err := kmeans.Run(d.Series, kmeans.Options{K: 6, MaxIter: 60, Init: kmeans.InitKMeansPP, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ari, err := quality.ARI(res.Assignments, d.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.4 {
		t.Fatalf("CER archetypes not separable: ARI = %v", ari)
	}
}

func TestTumorShapeAndArchetypes(t *testing.T) {
	d, err := TumorGrowth(TumorOptions{N: 150, Weeks: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Series) != 150 || d.Dim != 20 {
		t.Fatalf("shape: %d series, dim %d", len(d.Series), d.Dim)
	}
	if len(d.ArchetypeNames) != 4 {
		t.Fatalf("archetypes = %v", d.ArchetypeNames)
	}
	for _, s := range d.Series {
		for _, v := range s {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("invalid tumor size %v", v)
			}
		}
	}
}

func TestTumorDefaults(t *testing.T) {
	d, err := TumorGrowth(TumorOptions{N: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Dim != 20 {
		t.Fatalf("default weeks = %d, want 20 (the demo's horizon)", d.Dim)
	}
	if _, err := TumorGrowth(TumorOptions{N: -1}); err == nil {
		t.Fatal("negative n should error")
	}
}

func TestClaretModelShapes(t *testing.T) {
	// Responder: strong kill, slow regrowth -> size at week 19 well below
	// baseline. Progressor: negligible kill -> grows above baseline.
	responder := claretParams{kl: 0.015, kd: 0.12, lam: 0.01}
	progressor := claretParams{kl: 0.06, kd: 0.01, lam: 0.05}
	r0 := math.Exp(claretExponent(responder.kl, responder.kd, responder.lam, 0))
	r19 := math.Exp(claretExponent(responder.kl, responder.kd, responder.lam, 19))
	p19 := math.Exp(claretExponent(progressor.kl, progressor.kd, progressor.lam, 19))
	if r0 != 1 {
		t.Fatalf("t=0 factor = %v, want 1", r0)
	}
	if r19 >= 0.7 {
		t.Fatalf("responder factor at week 19 = %v, want < 0.7", r19)
	}
	if p19 <= 1.5 {
		t.Fatalf("progressor factor at week 19 = %v, want > 1.5", p19)
	}
	// λ=0 branch (pure exponential difference).
	if got := claretExponent(0.1, 0.02, 0, 10); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("λ=0 exponent = %v, want 0.8", got)
	}
}

func TestTumorArchetypesDistinguishable(t *testing.T) {
	d, err := TumorGrowth(TumorOptions{N: 300, Weeks: 20, Seed: 9, NoiseStd: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	d.NormalizeTo01()
	res, err := kmeans.Run(d.Series, kmeans.Options{K: 4, MaxIter: 60, Init: kmeans.InitKMeansPP, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ari, err := quality.ARI(res.Assignments, d.Labels)
	if err != nil {
		t.Fatal(err)
	}
	// Patient-level parameter jitter blurs archetypes; demand clearly
	// above-chance agreement.
	if ari < 0.25 {
		t.Fatalf("tumor archetypes not recoverable: ARI = %v", ari)
	}
}

func TestNormalizeTo01(t *testing.T) {
	d, err := CER(CEROptions{N: 50, Dim: 24, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	offset, scale := d.NormalizeTo01()
	lo, hi := d.Bounds()
	if math.Abs(lo) > 1e-12 || math.Abs(hi-1) > 1e-12 {
		t.Fatalf("bounds after normalize: [%v, %v]", lo, hi)
	}
	if scale <= 0 {
		t.Fatalf("scale = %v", scale)
	}
	_ = offset
}

func TestBounds(t *testing.T) {
	d := &Dataset{Series: [][]float64{{1, 5}, {-2, 3}}, Labels: []int{0, 0}, ArchetypeNames: []string{"x"}, Dim: 2}
	lo, hi := d.Bounds()
	if lo != -2 || hi != 5 {
		t.Fatalf("bounds = [%v, %v]", lo, hi)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"cer", "tumor"} {
		d, err := ByName(name, 20, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(d.Series) != 20 {
			t.Fatalf("%s: %d series", name, len(d.Series))
		}
	}
	if _, err := ByName("mnist", 10, 1); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestGaussBumpPeriodicity(t *testing.T) {
	// A bump centered at 23.5h must reach across midnight: the value at
	// hour 0.5 equals the value at 22.5 (both 1h away in circular time).
	a := gaussBump(0.5, 23.5, 2)
	b := gaussBump(22.5, 23.5, 2)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("circular bump asymmetric: %v vs %v", a, b)
	}
	if gaussBump(23.5, 23.5, 2) != 1 {
		t.Fatal("bump peak should be 1 at its center")
	}
}

func TestLabelsWithinRange(t *testing.T) {
	for _, gen := range []func() (*Dataset, error){
		func() (*Dataset, error) { return CER(CEROptions{N: 100, Seed: 13}) },
		func() (*Dataset, error) { return TumorGrowth(TumorOptions{N: 100, Seed: 13}) },
	} {
		d, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, l := range d.Labels {
			if l < 0 || l >= len(d.ArchetypeNames) {
				t.Fatalf("label %d out of range", l)
			}
			seen[l] = true
		}
		if len(seen) < 2 {
			t.Fatal("expected at least 2 archetypes present in 100 draws")
		}
	}
}
