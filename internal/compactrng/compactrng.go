// Package compactrng provides a 16-byte deterministic rand.Source64 for
// per-participant randomness at large population scales.
//
// The standard library's rand.NewSource allocates ~5 KB of additive-
// lagged-Fibonacci state per source. The simulator owns two sources per
// participant (protocol noise and peer sampling), so at a million nodes
// the RNG state alone would cost ~10 GB — more than every arena of
// internal/vecpool combined. This source replaces that state with a
// single uint64 advanced by the splitmix64 finalizer (Steele, Lea,
// Flood — "Fast splittable pseudorandom number generators", OOPSLA
// 2014): one addition and three xor-shift-multiplies per draw, passes
// BigCrush, and costs 16 bytes per instance.
//
// Streams are fully determined by the seed, so simulations remain
// reproducible; distinct seeds produce uncorrelated streams (the
// finalizer is a bijection with good avalanche). The draw algorithms on
// top (Float64, Intn, Perm, ...) are the standard library's own —
// rand.New(compactrng.New(seed)) uses the Source64 fast paths.
package compactrng

import "math/rand"

// Source is a splitmix64 rand.Source64. Not safe for concurrent use —
// like every rand.Source, each goroutine (here: each participant) owns
// its own.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{state: uint64(seed)}
}

// Seed implements rand.Source.
func (s *Source) Seed(seed int64) { s.state = uint64(seed) }

// State returns the source's complete internal state: the single
// splitmix64 counter. Together with SetState it makes the stream
// checkpointable — a restored source continues the exact draw sequence
// the original would have produced, which is what lets a crashed
// networked participant (internal/core Snapshot/Restore) replay its
// run bit-identically.
func (s *Source) State() uint64 { return s.state }

// SetState overwrites the source's internal state with a value obtained
// from State.
func (s *Source) SetState(v uint64) { s.state = v }

// Uint64 implements rand.Source64: one splitmix64 step.
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

var _ rand.Source64 = (*Source)(nil)

// NewRand returns a *rand.Rand over a fresh splitmix64 source — a
// drop-in, 300×-smaller replacement for rand.New(rand.NewSource(seed)).
func NewRand(seed int64) *rand.Rand {
	return rand.New(New(seed))
}
