package compactrng

import (
	"math"
	"math/rand"
	"testing"
	"unsafe"
)

func TestDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	d := NewRand(42)
	for i := 0; i < 1000; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 42 and 43 collided on %d of 1000 draws", same)
	}
}

func TestReseed(t *testing.T) {
	s := New(7)
	first := s.Uint64()
	s.Uint64()
	s.Seed(7)
	if got := s.Uint64(); got != first {
		t.Fatalf("reseed did not restart the stream: %d != %d", got, first)
	}
}

// TestUniformity sanity-checks the draw quality the simulator depends
// on: Float64 mean/variance and Intn bucket balance.
func TestUniformity(t *testing.T) {
	r := NewRand(2016)
	const n = 200000
	var sum, sumSq float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
		sumSq += f * f
		buckets[r.Intn(10)]++
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
	variance := sumSq/n - mean*mean
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Fatalf("Float64 variance %v too far from 1/12", variance)
	}
	for b, c := range buckets {
		if math.Abs(float64(c)-n/10) > 4*math.Sqrt(n/10) {
			t.Fatalf("Intn bucket %d count %d too far from %d", b, c, n/10)
		}
	}
}

// TestInt63NonNegative pins the rand.Source contract.
func TestInt63NonNegative(t *testing.T) {
	s := New(-12345)
	for i := 0; i < 10000; i++ {
		if s.Int63() < 0 {
			t.Fatal("Int63 returned a negative value")
		}
	}
}

// TestStateSize pins the point of the package: a source is one word.
func TestStateSize(t *testing.T) {
	if sz := unsafe.Sizeof(Source{}); sz != 8 {
		t.Fatalf("Source is %d bytes, want 8", sz)
	}
}

// TestStateRoundTrip pins the checkpoint contract: a source restored
// from State() continues the exact stream of the original, including
// through a rand.Rand wrapper (the configuration every participant
// uses).
func TestStateRoundTrip(t *testing.T) {
	src := New(42)
	r := rand.New(src)
	for i := 0; i < 1000; i++ {
		r.Float64()
	}
	saved := src.State()
	want := make([]float64, 100)
	for i := range want {
		want[i] = r.Float64()
	}

	restored := New(0)
	restored.SetState(saved)
	r2 := rand.New(restored)
	for i := range want {
		if got := r2.Float64(); got != want[i] {
			t.Fatalf("draw %d after restore: %v, want %v", i, got, want[i])
		}
	}
}
