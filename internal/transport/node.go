package transport

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/p2p"
	"chiaroscuro/internal/wire"
)

// node is one running mesh member: the core participant, its
// deterministic peer sampler, and one TCP connection per peer.
type node struct {
	cfg     Config
	fp      uint64 // run-configuration fingerprint (known pre-ceremony)
	core    *core.Node
	sampler *p2p.Sampler
	ln      net.Listener
	conns   []net.Conn // indexed by peer id; nil at cfg.ID
	in      chan inMsg
	stop    chan struct{} // closed on Run exit; unblocks reader sends

	// Key-ceremony buffers: peers progress through the ceremony (and
	// into epoch 0) at their own pace, so frames from rounds or epochs
	// we have not reached yet are parked rather than dropped.
	keyPending map[int][][]byte // ceremony round -> payloads
	backlog    []inMsg          // epoch traffic that arrived mid-ceremony
}

// inMsg is one parsed message (or terminal condition) from a peer's
// read loop.
type inMsg struct {
	from    int
	kind    byte
	epoch   int
	done    bool
	payload []byte
	err     error
}

// Run executes one full networked clustering as participant cfg.ID and
// returns that participant's per-iteration history. All processes must
// pass identical (data, params); the handshake fingerprint rejects a
// peer that did not. Run blocks until the whole population terminates,
// an epoch barrier times out, or a peer violates the protocol.
//
// The mesh forms before any key exists: the handshake digests the raw
// configuration (core.ConfigFingerprint), and on the Damgård–Jurik
// backend the processes then run the distributed key ceremony over the
// fresh mesh (ceremony.go) — each daemon walks away holding only its
// own key share — before the first epoch is stepped.
func Run(cfg Config, data [][]float64, params core.Params) ([]core.IterationResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(data) != cfg.Population {
		return nil, fmt.Errorf("transport: config population %d but %d series supplied", cfg.Population, len(data))
	}
	fp, err := core.ConfigFingerprint(data, params)
	if err != nil {
		return nil, err
	}

	n := &node{
		cfg:   cfg,
		fp:    fp,
		conns: make([]net.Conn, cfg.Population),
		// The buffer absorbs a full population's worth of barrier
		// traffic without blocking readers mid-epoch.
		in:         make(chan inMsg, 8*cfg.Population),
		stop:       make(chan struct{}),
		keyPending: make(map[int][][]byte),
	}
	defer close(n.stop)
	defer n.closeConns()

	if err := n.formMesh(); err != nil {
		return nil, err
	}
	if params.Backend == core.BackendDamgardJurik && params.DJMaterial == nil {
		m, err := n.runCeremony(cfg.Population, params)
		if err != nil {
			return nil, err
		}
		params.DJMaterial = m
	}
	cn, err := core.NewNode(data, params, cfg.ID)
	if err != nil {
		return nil, err
	}
	defer cn.Close()
	n.core = cn
	n.sampler = p2p.NewSampler(cn.SamplingSeed(), p2p.NodeID(cfg.ID), cfg.Population)
	if err := n.runEpochs(); err != nil {
		return nil, err
	}
	return cn.History(), nil
}

func (n *node) closeConns() {
	if n.ln != nil {
		n.ln.Close()
	}
	for _, c := range n.conns {
		if c != nil {
			c.Close()
		}
	}
}

// formMesh joins the full mesh: listen, publish/collect addresses, dial
// every lower-id peer with a hello, and accept one connection from
// every higher-id peer, verifying each hello against this node's own
// run fingerprint.
func (n *node) formMesh() error {
	ln, err := net.Listen("tcp", n.cfg.Listen)
	if err != nil {
		return fmt.Errorf("transport: listen: %w", err)
	}
	n.ln = ln
	deadline := time.Now().Add(n.cfg.EpochTimeout)

	addrs := n.cfg.Peers
	if n.cfg.AddrDir != "" {
		addrs, err = n.rendezvous(ln.Addr().String(), deadline)
		if err != nil {
			return err
		}
	}
	n.cfg.logf("node %d listening on %s", n.cfg.ID, ln.Addr())

	// Accept from higher ids concurrently with dialing lower ids —
	// every pair (i < j) connects exactly once, j dialing i.
	acceptErr := make(chan error, 1)
	go func() { acceptErr <- n.acceptPeers(deadline) }()
	for j := 0; j < n.cfg.ID; j++ {
		if err := n.dialPeer(j, addrs[j], deadline); err != nil {
			return err
		}
	}
	if err := <-acceptErr; err != nil {
		return err
	}
	n.cfg.logf("node %d mesh complete (%d peers)", n.cfg.ID, n.cfg.Population-1)

	for id, c := range n.conns {
		if c != nil {
			go n.readLoop(id, c)
		}
	}
	return nil
}

// rendezvous publishes this node's bound address in the shared
// directory and polls for every other node's file.
func (n *node) rendezvous(self string, deadline time.Time) ([]string, error) {
	tmp := filepath.Join(n.cfg.AddrDir, fmt.Sprintf(".%d.addr.tmp", n.cfg.ID))
	if err := os.WriteFile(tmp, []byte(self), 0o644); err != nil {
		return nil, fmt.Errorf("transport: rendezvous publish: %w", err)
	}
	final := filepath.Join(n.cfg.AddrDir, fmt.Sprintf("%d.addr", n.cfg.ID))
	if err := os.Rename(tmp, final); err != nil {
		return nil, fmt.Errorf("transport: rendezvous publish: %w", err)
	}
	addrs := make([]string, n.cfg.Population)
	addrs[n.cfg.ID] = self
	for missing := n.cfg.Population - 1; missing > 0; {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: rendezvous: %d peers unpublished after %v", missing, n.cfg.EpochTimeout)
		}
		for id := range addrs {
			if addrs[id] != "" {
				continue
			}
			b, err := os.ReadFile(filepath.Join(n.cfg.AddrDir, fmt.Sprintf("%d.addr", id)))
			if err != nil {
				continue
			}
			addrs[id] = string(b)
			missing--
		}
		if missing > 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	return addrs, nil
}

// dialPeer connects to a lower-id peer and runs the join handshake.
func (n *node) dialPeer(id int, addr string, deadline time.Time) error {
	var conn net.Conn
	var err error
	for {
		conn, err = net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: dial peer %d (%s): %w", id, addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	conn.SetDeadline(deadline)
	h := hello{ID: n.cfg.ID, Population: n.cfg.Population, Fingerprint: n.fp}
	if err := wire.WriteFrame(conn, marshalHello(h)); err != nil {
		conn.Close()
		return fmt.Errorf("transport: hello to peer %d: %w", id, err)
	}
	frame, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return fmt.Errorf("transport: handshake with peer %d: %w", id, err)
	}
	switch {
	case len(frame) > 0 && frame[0] == mtWelcome:
		got, err := parseWelcome(frame[1:])
		if err != nil {
			conn.Close()
			return err
		}
		if got != id {
			conn.Close()
			return fmt.Errorf("transport: dialed peer %d but %d answered", id, got)
		}
	case len(frame) > 0 && frame[0] == mtReject:
		reason, _ := parseReject(frame[1:])
		conn.Close()
		return fmt.Errorf("transport: peer %d rejected join: %s", id, reason)
	default:
		conn.Close()
		return fmt.Errorf("transport: peer %d sent unexpected handshake frame", id)
	}
	conn.SetDeadline(time.Time{})
	n.conns[id] = conn
	return nil
}

// acceptPeers accepts and verifies one connection from every higher-id
// peer. A hello that does not match this node's run configuration is
// answered with a reject frame and fails the mesh.
func (n *node) acceptPeers(deadline time.Time) error {
	want := n.cfg.Population - 1 - n.cfg.ID
	type tcpListener interface{ SetDeadline(time.Time) error }
	if d, ok := n.ln.(tcpListener); ok {
		d.SetDeadline(deadline)
	}
	for got := 0; got < want; {
		conn, err := n.ln.Accept()
		if err != nil {
			return fmt.Errorf("transport: accept (%d/%d peers joined): %w", got, want, err)
		}
		conn.SetDeadline(deadline)
		frame, err := wire.ReadFrame(conn)
		if err != nil || len(frame) == 0 || frame[0] != mtHello {
			conn.Close()
			continue // not a mesh dialer; ignore
		}
		h, err := parseHello(frame[1:])
		if err != nil {
			conn.Close()
			continue
		}
		reason := ""
		switch {
		case h.ID <= n.cfg.ID || h.ID >= n.cfg.Population:
			reason = fmt.Sprintf("id %d out of dialer range", h.ID)
		case n.conns[h.ID] != nil:
			reason = fmt.Sprintf("id %d already joined", h.ID)
		case h.Population != n.cfg.Population:
			reason = fmt.Sprintf("population %d, want %d", h.Population, n.cfg.Population)
		case h.Fingerprint != n.fp:
			reason = "run configuration fingerprint mismatch"
		}
		if reason != "" {
			wire.WriteFrame(conn, marshalReject(reason))
			conn.Close()
			return fmt.Errorf("transport: rejected join from %d: %s", h.ID, reason)
		}
		if err := wire.WriteFrame(conn, marshalWelcome(n.cfg.ID)); err != nil {
			conn.Close()
			return fmt.Errorf("transport: welcome to %d: %w", h.ID, err)
		}
		conn.SetDeadline(time.Time{})
		n.conns[h.ID] = conn
		got++
	}
	return nil
}

// readLoop parses frames from one peer for the life of the mesh.
func (n *node) readLoop(from int, conn net.Conn) {
	for {
		frame, err := wire.ReadFrame(conn)
		m := inMsg{from: from}
		if err != nil {
			m.err = err
		} else if len(frame) == 0 {
			m.err = errors.New("transport: empty frame")
		} else {
			m.kind = frame[0]
			switch frame[0] {
			case mtTick:
				m.epoch, m.done, m.err = parseTick(frame[1:])
			case mtData:
				m.epoch, m.payload, m.err = parseData(frame[1:])
			case mtKey:
				// Ceremony frames reuse the epoch slot for the round tag.
				m.epoch, m.payload, m.err = parseKey(frame[1:])
			case mtBye:
				// fall through with kind only
			default:
				m.err = fmt.Errorf("transport: unexpected frame kind 0x%02x", frame[0])
			}
		}
		select {
		case n.in <- m:
		case <-n.stop:
			return
		}
		if m.err != nil || m.kind == mtBye {
			return
		}
	}
}

// epochEnv adapts one epoch of the mesh to core.Env: the inbox holds
// the previous epoch's payloads (ascending sender id, per-sender FIFO —
// the simulator's delivery order), sends go out tagged with the current
// epoch, and peer sampling comes from the engine-equivalent Sampler.
type epochEnv struct {
	n       *node
	epoch   int
	inbox   []p2p.Message
	sendErr error
}

func (e *epochEnv) ID() p2p.NodeID       { return p2p.NodeID(e.n.cfg.ID) }
func (e *epochEnv) Cycle() int           { return e.epoch }
func (e *epochEnv) PopulationSize() int  { return e.n.cfg.Population }
func (e *epochEnv) AliveCount() int      { return e.n.cfg.Population }
func (e *epochEnv) Inbox() []p2p.Message { return e.inbox }
func (e *epochEnv) RandomPeer() (p2p.NodeID, bool) {
	return e.n.sampler.RandomPeer()
}
func (e *epochEnv) RandomPeers(k int) []p2p.NodeID {
	return e.n.sampler.RandomPeers(k)
}

// Send marshals the payload immediately (the participant may reuse its
// buffers after Send returns) and writes one data frame to the peer.
func (e *epochEnv) Send(to p2p.NodeID, payload any, bytes int) error {
	conn := e.n.conns[int(to)]
	if conn == nil {
		return fmt.Errorf("transport: send to unknown peer %d", to)
	}
	raw, err := e.n.core.EncodePayload(payload)
	if err != nil {
		e.sendErr = err
		return err
	}
	if err := wire.WriteFrame(conn, marshalData(e.epoch, raw)); err != nil {
		e.sendErr = fmt.Errorf("transport: send to peer %d: %w", to, err)
		return e.sendErr
	}
	return nil
}

// runEpochs drives the coordinator-free epoch clock until the whole
// population has terminated. Epoch e of the mesh is cycle e of the
// simulation contract: payloads sent at e are stepped at e+1.
func (n *node) runEpochs() error {
	// Buffers for messages from peers running ahead of our barrier.
	pendingData := map[int]map[int][][]byte{} // epoch -> sender -> payloads
	ticks := map[int]map[int]bool{}           // epoch -> sender -> done flag
	left := map[int]bool{}                    // peers that sent bye

	limit := n.core.MaxCycles()
	for epoch := 0; epoch < limit; epoch++ {
		inbox, err := n.buildInbox(pendingData[epoch-1])
		if err != nil {
			return err
		}
		delete(pendingData, epoch-1)

		env := &epochEnv{n: n, epoch: epoch, inbox: inbox}
		n.core.Step(env)
		if env.sendErr != nil {
			return env.sendErr
		}

		done := n.core.Done()
		for _, c := range n.conns {
			if c == nil {
				continue
			}
			if err := wire.WriteFrame(c, marshalTick(epoch, done)); err != nil {
				return fmt.Errorf("transport: tick broadcast: %w", err)
			}
		}

		allDone, err := n.awaitBarrier(epoch, done, pendingData, ticks, left)
		if err != nil {
			return err
		}
		delete(ticks, epoch)
		if allDone {
			n.cfg.logf("node %d terminated at epoch %d", n.cfg.ID, epoch)
			for _, c := range n.conns {
				if c != nil {
					wire.WriteFrame(c, marshalBye())
				}
			}
			return nil
		}
	}
	return fmt.Errorf("transport: no termination within %d epochs", limit)
}

// awaitBarrier blocks until every peer's tick for the given epoch has
// arrived, buffering any messages for later epochs. It reports whether
// the entire population (peers and self) has terminated. Epoch traffic
// that arrived while this node was still in the key ceremony (backlog)
// is replayed first, preserving per-sender FIFO order.
func (n *node) awaitBarrier(epoch int, selfDone bool, pendingData map[int]map[int][][]byte, ticks map[int]map[int]bool, left map[int]bool) (bool, error) {
	timeout := time.NewTimer(n.cfg.EpochTimeout)
	defer timeout.Stop()
	for len(ticks[epoch]) < n.cfg.Population-1 {
		var m inMsg
		if len(n.backlog) > 0 {
			m = n.backlog[0]
			n.backlog = n.backlog[1:]
		} else {
			select {
			case m = <-n.in:
			case <-timeout.C:
				return false, fmt.Errorf("transport: epoch %d barrier timed out after %v (%d/%d ticks)", epoch, n.cfg.EpochTimeout, len(ticks[epoch]), n.cfg.Population-1)
			}
		}
		if m.err != nil {
			return false, fmt.Errorf("transport: peer %d connection failed at epoch %d: %w", m.from, epoch, m.err)
		}
		switch m.kind {
		case mtTick:
			if m.epoch < epoch {
				return false, fmt.Errorf("transport: peer %d re-ticked past epoch %d", m.from, m.epoch)
			}
			et := ticks[m.epoch]
			if et == nil {
				et = map[int]bool{}
				ticks[m.epoch] = et
			}
			et[m.from] = m.done
		case mtData:
			if m.epoch < epoch {
				return false, fmt.Errorf("transport: peer %d sent stale data for epoch %d at barrier %d", m.from, m.epoch, epoch)
			}
			ed := pendingData[m.epoch]
			if ed == nil {
				ed = map[int][][]byte{}
				pendingData[m.epoch] = ed
			}
			ed[m.from] = append(ed[m.from], m.payload)
		case mtBye:
			// A leave is orderly only after this barrier shows the
			// whole population done; a peer that leaves while the
			// run is live breaks the fault-free contract.
			left[m.from] = true
			if _, ticked := ticks[epoch][m.from]; !ticked {
				return false, fmt.Errorf("transport: peer %d left the mesh at epoch %d", m.from, epoch)
			}
		case mtKey:
			return false, fmt.Errorf("transport: peer %d sent a key-ceremony frame at epoch %d", m.from, epoch)
		}
	}
	if !selfDone {
		return false, nil
	}
	for _, done := range ticks[epoch] {
		if !done {
			return false, nil
		}
	}
	return true, nil
}

// buildInbox decodes one epoch's buffered payloads into the simulator's
// delivery order: ascending sender id, per-sender arrival (FIFO) order.
func (n *node) buildInbox(bySender map[int][][]byte) ([]p2p.Message, error) {
	if len(bySender) == 0 {
		return nil, nil
	}
	senders := make([]int, 0, len(bySender))
	for from := range bySender {
		senders = append(senders, from)
	}
	sort.Ints(senders)
	var inbox []p2p.Message
	for _, from := range senders {
		for _, raw := range bySender[from] {
			payload, err := n.core.DecodePayload(raw)
			if err != nil {
				return nil, fmt.Errorf("transport: bad payload from peer %d: %w", from, err)
			}
			inbox = append(inbox, p2p.Message{From: p2p.NodeID(from), Payload: payload, Bytes: len(raw)})
		}
	}
	return inbox, nil
}
