package transport

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/p2p"
	"chiaroscuro/internal/wire"
)

// ErrInterrupted reports a graceful shutdown: the node received the
// configured interrupt signal, wrote a final checkpoint (when
// checkpointing is enabled), and said bye to its peers. The run can be
// resumed from the checkpoint.
var ErrInterrupted = errors.New("transport: interrupted")

// errBarrierInterrupted is the internal signal that the interrupt
// arrived while parked at an epoch barrier (the checkpoint must then
// record the barrier as pending, not the epoch as unstarted).
var errBarrierInterrupted = errors.New("transport: barrier interrupted")

// gracePollInterval is how often a grace-extended barrier re-examines
// link states while waiting for a down peer to come back.
const gracePollInterval = 250 * time.Millisecond

// node is one running mesh member: the core participant, its
// deterministic peer sampler, and one supervised link per peer.
type node struct {
	cfg     Config
	fp      uint64 // run-configuration fingerprint (known pre-ceremony)
	core    *core.Node
	sampler *p2p.Sampler
	ln      net.Listener
	links   []*link  // indexed by peer id; nil at cfg.ID
	addrs   []string // dial addresses from formation (AddrDir mode re-reads live)
	in      chan inMsg
	stop    chan struct{} // closed on Run exit; unblocks reader sends

	meshFormed atomic.Bool
	formJoin   chan int
	formErr    chan error

	// Key-ceremony buffers: peers progress through the ceremony (and
	// into epoch 0) at their own pace, so frames from rounds or epochs
	// we have not reached yet are parked rather than dropped.
	keyPending map[int][][]byte // ceremony round -> payloads
	backlog    []inMsg          // epoch traffic that arrived mid-ceremony

	// Barrier state, hoisted into the node so checkpoints can capture
	// and restore it.
	pendingData map[int]map[int][][]byte // epoch -> sender -> payloads
	ticks       map[int]map[int]bool     // epoch -> sender -> done flag
	left        map[int]bool             // peers that sent bye

	// procSeq[peer] is the sequence number of the last frame from that
	// peer actually popped from the inbox. Everything popped lands in a
	// checkpointed buffer (ticks, pendingData, keyPending, backlog), so
	// this — not the read loop's accept watermark — is what a checkpoint
	// may safely record as inSeq: frames still queued in n.in at
	// checkpoint time are re-requested through the resume handshake
	// instead of being silently lost.
	procSeq []uint64

	startEpoch     int  // first epoch to run (non-zero after resume)
	barrierPending bool // resume directly into the barrier of startEpoch
}

// inMsg is one parsed message (or terminal condition) from a peer's
// read loop.
type inMsg struct {
	from    int
	kind    byte
	epoch   int
	done    bool
	payload []byte
	seq     uint64 // frame sequence number; 0 for unsequenced frames
	err     error
}

// Run executes one full networked clustering as participant cfg.ID and
// returns that participant's per-iteration history. All processes must
// pass identical (data, params); the handshake fingerprint rejects a
// peer that did not. Run blocks until the whole population terminates,
// an epoch barrier times out (grace expired, if configured), a peer
// violates the protocol, or the interrupt channel fires
// (ErrInterrupted).
//
// The mesh forms before any key exists: the handshake digests the raw
// configuration (core.ConfigFingerprint), and on the Damgård–Jurik
// backend the processes then run the distributed key ceremony over the
// fresh mesh (ceremony.go) — each daemon walks away holding only its
// own key share — before the first epoch is stepped.
//
// With cfg.Resume, the node instead restores its participant, sampler
// and link state from the checkpoint in cfg.CheckpointDir, re-forms the
// mesh with the resume handshake (replaying whatever frames were lost),
// and rejoins the run at the checkpointed barrier. The disclosed
// histories are bit-identical to an uninterrupted run.
func Run(cfg Config, data [][]float64, params core.Params) ([]core.IterationResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(data) != cfg.Population {
		return nil, fmt.Errorf("transport: config population %d but %d series supplied", cfg.Population, len(data))
	}
	fp, err := core.ConfigFingerprint(data, params)
	if err != nil {
		return nil, err
	}

	n := &node{
		cfg:   cfg,
		fp:    fp,
		links: make([]*link, cfg.Population),
		// The buffer absorbs a full population's worth of barrier
		// traffic without blocking readers mid-epoch.
		in:          make(chan inMsg, 8*cfg.Population),
		stop:        make(chan struct{}),
		formJoin:    make(chan int, cfg.Population),
		formErr:     make(chan error, cfg.Population),
		keyPending:  make(map[int][][]byte),
		pendingData: map[int]map[int][][]byte{},
		ticks:       map[int]map[int]bool{},
		left:        map[int]bool{},
		procSeq:     make([]uint64, cfg.Population),
	}
	for id := range n.links {
		if id != cfg.ID {
			n.links[id] = newLink(n, id)
		}
	}
	defer close(n.stop)
	defer n.closeConns()

	if cfg.Resume {
		ck, err := loadCheckpoint(checkpointPath(cfg), cfg, fp)
		if err != nil {
			return nil, err
		}
		n.restoreFromCheckpoint(ck)
		cn, err := core.RestoreNode(data, params, cfg.ID, ck.coreSnap)
		if err != nil {
			return nil, err
		}
		defer cn.Close()
		n.core = cn
		n.sampler = p2p.NewSampler(cn.SamplingSeed(), p2p.NodeID(cfg.ID), cfg.Population)
		n.sampler.SetState(ck.samplerState)
		if err := n.formMeshResume(); err != nil {
			return nil, err
		}
	} else {
		if err := n.formMesh(); err != nil {
			return nil, err
		}
		if params.Backend == core.BackendDamgardJurik && params.DJMaterial == nil {
			m, err := n.runCeremony(cfg.Population, params)
			if err != nil {
				return nil, err
			}
			params.DJMaterial = m
		}
		cn, err := core.NewNode(data, params, cfg.ID)
		if err != nil {
			return nil, err
		}
		defer cn.Close()
		n.core = cn
		n.sampler = p2p.NewSampler(cn.SamplingSeed(), p2p.NodeID(cfg.ID), cfg.Population)
	}
	if err := n.runEpochs(); err != nil {
		return nil, err
	}
	return n.core.History(), nil
}

func (n *node) stopped() bool {
	select {
	case <-n.stop:
		return true
	default:
		return false
	}
}

// deliver hands one message to the main loop, giving up when the run
// has ended.
func (n *node) deliver(m inMsg) {
	select {
	case n.in <- m:
	case <-n.stop:
	}
}

// interrupted reports whether the configured interrupt has fired.
func (n *node) interrupted() bool {
	select {
	case <-n.cfg.Interrupt:
		return true
	default:
		return false
	}
}

func (n *node) closeConns() {
	if n.ln != nil {
		n.ln.Close()
	}
	for _, l := range n.links {
		if l == nil {
			continue
		}
		l.mu.Lock()
		if l.conn != nil {
			l.conn.Close()
			l.conn = nil
		}
		l.gen++
		l.mu.Unlock()
	}
}

// listen opens the node's listener, through the chaos hook if one is
// configured.
func (n *node) listen() error {
	var ln net.Listener
	var err error
	if n.cfg.Listener != nil {
		ln, err = n.cfg.Listener("tcp", n.cfg.Listen)
	} else {
		ln, err = net.Listen("tcp", n.cfg.Listen)
	}
	if err != nil {
		return fmt.Errorf("transport: listen: %w", err)
	}
	n.ln = ln
	return nil
}

// dial opens one peer connection, through the chaos hook if one is
// configured.
func (n *node) dial(addr string, timeout time.Duration) (net.Conn, error) {
	if n.cfg.Dialer != nil {
		return n.cfg.Dialer("tcp", addr, timeout)
	}
	return net.DialTimeout("tcp", addr, timeout)
}

// peerAddr resolves a peer's current dial address. In rendezvous mode
// the address file is re-read every time: a restarted peer publishes a
// fresh port, and redial must pick it up.
func (n *node) peerAddr(peer int) (string, error) {
	if n.cfg.AddrDir == "" {
		return n.cfg.Peers[peer], nil
	}
	b, err := os.ReadFile(filepath.Join(n.cfg.AddrDir, fmt.Sprintf("%d.addr", peer)))
	if err != nil {
		return "", err
	}
	addr, ok := parseAddrFile(b, n.fp)
	if !ok {
		return "", fmt.Errorf("transport: stale rendezvous entry for peer %d", peer)
	}
	return addr, nil
}

// formMesh joins the full mesh: listen, publish/collect addresses, dial
// every lower-id peer with a hello, and wait for the persistent accept
// loop to install one connection from every higher-id peer.
func (n *node) formMesh() error {
	if err := n.listen(); err != nil {
		return err
	}
	deadline := time.Now().Add(n.cfg.EpochTimeout)

	addrs := n.cfg.Peers
	if n.cfg.AddrDir != "" {
		var err error
		addrs, err = n.rendezvous(n.ln.Addr().String(), deadline)
		if err != nil {
			return err
		}
	}
	n.addrs = addrs
	n.cfg.logf("node %d listening on %s", n.cfg.ID, n.ln.Addr())

	// Accept from higher ids concurrently with dialing lower ids —
	// every pair (i < j) connects exactly once, j dialing i.
	go n.acceptLoop()
	for j := 0; j < n.cfg.ID; j++ {
		if err := n.dialPeer(j, addrs[j], deadline); err != nil {
			return err
		}
	}
	want := n.cfg.Population - 1 - n.cfg.ID
	for got := 0; got < want; {
		wait := time.Until(deadline)
		if wait <= 0 {
			return fmt.Errorf("transport: mesh formation timed out (%d/%d peers joined)", got, want)
		}
		select {
		case <-n.formJoin:
			got++
		case err := <-n.formErr:
			return err
		case <-time.After(wait):
			return fmt.Errorf("transport: mesh formation timed out (%d/%d peers joined)", got, want)
		}
	}
	n.meshFormed.Store(true)
	n.cfg.logf("node %d mesh complete (%d peers)", n.cfg.ID, n.cfg.Population-1)
	return nil
}

// formMeshResume re-forms the mesh after a crash restart: republish the
// (new) listen address, resume-dial every lower-id peer, and wait for
// every higher-id survivor's redial loop to find us. All links start
// down; the mesh is re-formed when every link is back up.
func (n *node) formMeshResume() error {
	if err := n.listen(); err != nil {
		return err
	}
	deadline := time.Now().Add(n.cfg.EpochTimeout + n.cfg.Grace)
	if n.cfg.AddrDir != "" {
		if _, err := n.rendezvous(n.ln.Addr().String(), deadline); err != nil {
			return err
		}
	} else {
		n.addrs = n.cfg.Peers
	}
	n.cfg.logf("node %d resuming at epoch %d, listening on %s", n.cfg.ID, n.startEpoch, n.ln.Addr())
	n.meshFormed.Store(true)
	go n.acceptLoop()
	for _, l := range n.links {
		if l != nil && l.dialerSide {
			l.mu.Lock()
			l.redialing = true
			l.mu.Unlock()
			go l.redialLoop()
		}
	}
	for {
		up := 0
		for _, l := range n.links {
			if l == nil {
				continue
			}
			l.mu.Lock()
			if !l.down && l.conn != nil {
				up++
			}
			l.mu.Unlock()
		}
		if up == n.cfg.Population-1 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: resume: mesh not re-formed within %v (%d/%d links up)", n.cfg.EpochTimeout+n.cfg.Grace, up, n.cfg.Population-1)
		}
		time.Sleep(5 * time.Millisecond)
	}
	n.cfg.logf("node %d mesh resumed (%d peers)", n.cfg.ID, n.cfg.Population-1)
	return nil
}

// rendezvous publishes this node's bound address in the shared
// directory and polls for every other node's file. Address files embed
// the run fingerprint, so entries left behind by an earlier run in the
// same directory (or by this node's own previous incarnation under a
// different configuration) are ignored rather than dialed.
func (n *node) rendezvous(self string, deadline time.Time) ([]string, error) {
	tmp := filepath.Join(n.cfg.AddrDir, fmt.Sprintf(".%d.addr.tmp", n.cfg.ID))
	if err := os.WriteFile(tmp, []byte(fmt.Sprintf("%016x %s", n.fp, self)), 0o644); err != nil {
		return nil, fmt.Errorf("transport: rendezvous publish: %w", err)
	}
	final := filepath.Join(n.cfg.AddrDir, fmt.Sprintf("%d.addr", n.cfg.ID))
	if err := os.Rename(tmp, final); err != nil {
		return nil, fmt.Errorf("transport: rendezvous publish: %w", err)
	}
	addrs := make([]string, n.cfg.Population)
	addrs[n.cfg.ID] = self
	for missing := n.cfg.Population - 1; missing > 0; {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: rendezvous: %d peers unpublished after %v", missing, n.cfg.EpochTimeout)
		}
		for id := range addrs {
			if addrs[id] != "" {
				continue
			}
			b, err := os.ReadFile(filepath.Join(n.cfg.AddrDir, fmt.Sprintf("%d.addr", id)))
			if err != nil {
				continue
			}
			addr, ok := parseAddrFile(b, n.fp)
			if !ok {
				continue // stale entry from another run; ignore
			}
			addrs[id] = addr
			missing--
		}
		if missing > 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	return addrs, nil
}

// parseAddrFile decodes one rendezvous entry ("%016x %s": fingerprint
// then address) and reports whether it belongs to this run.
func parseAddrFile(b []byte, fp uint64) (string, bool) {
	s := string(b)
	i := strings.IndexByte(s, ' ')
	if i != 16 {
		return "", false
	}
	got, err := strconv.ParseUint(s[:16], 16, 64)
	if err != nil || got != fp {
		return "", false
	}
	addr := s[17:]
	if addr == "" {
		return "", false
	}
	return addr, true
}

// dialPeer connects to a lower-id peer and runs the join handshake.
func (n *node) dialPeer(id int, addr string, deadline time.Time) error {
	var conn net.Conn
	var err error
	for {
		conn, err = n.dial(addr, time.Until(deadline))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: dial peer %d (%s): %w", id, addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	conn.SetDeadline(deadline)
	h := hello{ID: n.cfg.ID, Population: n.cfg.Population, Fingerprint: n.fp}
	if err := wire.WriteFrame(conn, marshalHello(h)); err != nil {
		conn.Close()
		return fmt.Errorf("transport: hello to peer %d: %w", id, err)
	}
	frame, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return fmt.Errorf("transport: handshake with peer %d: %w", id, err)
	}
	switch {
	case len(frame) > 0 && frame[0] == mtWelcome:
		got, err := parseWelcome(frame[1:])
		if err != nil {
			conn.Close()
			return err
		}
		if got != id {
			conn.Close()
			return fmt.Errorf("transport: dialed peer %d but %d answered", id, got)
		}
	case len(frame) > 0 && frame[0] == mtReject:
		reason, _ := parseReject(frame[1:])
		conn.Close()
		return fmt.Errorf("transport: peer %d rejected join: %s", id, reason)
	default:
		conn.Close()
		return fmt.Errorf("transport: peer %d sent unexpected handshake frame", id)
	}
	conn.SetDeadline(time.Time{})
	n.links[id].installConn(conn, 0, false)
	return nil
}

// acceptLoop accepts inbound connections for the life of the node:
// formation hellos while the mesh is forming, resume handshakes from
// reconnecting peers afterwards.
func (n *node) acceptLoop() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			if n.stopped() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept failure (e.g. an injected listener
			// refusal): keep serving.
			time.Sleep(time.Millisecond)
			continue
		}
		go n.handleInbound(conn)
	}
}

// formFail reports a fatal mesh-formation problem to formMesh.
func (n *node) formFail(err error) {
	select {
	case n.formErr <- err:
	default:
	}
}

// handleInbound classifies one inbound connection by its first frame: a
// formation hello or a resume handshake. A hello that does not match
// this node's run configuration is answered with a reject frame and
// fails the mesh (the legacy formation contract); a bad resume is
// rejected without disturbing the run.
func (n *node) handleInbound(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(n.cfg.EpochTimeout))
	frame, err := wire.ReadFrame(conn)
	if err != nil || len(frame) == 0 {
		conn.Close()
		return
	}
	switch frame[0] {
	case mtHello:
		if n.meshFormed.Load() {
			wire.WriteFrame(conn, marshalReject("mesh already formed"))
			conn.Close()
			return
		}
		h, err := parseHello(frame[1:])
		if err != nil {
			conn.Close()
			return
		}
		reason := ""
		switch {
		case h.ID <= n.cfg.ID || h.ID >= n.cfg.Population:
			reason = fmt.Sprintf("id %d out of dialer range", h.ID)
		case n.links[h.ID].hasConn():
			reason = fmt.Sprintf("id %d already joined", h.ID)
		case h.Population != n.cfg.Population:
			reason = fmt.Sprintf("population %d, want %d", h.Population, n.cfg.Population)
		case h.Fingerprint != n.fp:
			reason = "run configuration fingerprint mismatch"
		}
		if reason != "" {
			wire.WriteFrame(conn, marshalReject(reason))
			conn.Close()
			n.formFail(fmt.Errorf("transport: rejected join from %d: %s", h.ID, reason))
			return
		}
		if err := wire.WriteFrame(conn, marshalWelcome(n.cfg.ID)); err != nil {
			conn.Close()
			n.formFail(fmt.Errorf("transport: welcome to %d: %w", h.ID, err))
			return
		}
		conn.SetDeadline(time.Time{})
		n.links[h.ID].installConn(conn, 0, false)
		select {
		case n.formJoin <- h.ID:
		case <-n.stop:
		}
	case mtResume:
		r, err := parseResume(frame[1:])
		if err != nil {
			conn.Close()
			return
		}
		reason := ""
		switch {
		case n.cfg.Grace <= 0:
			reason = "grace disabled"
		case r.ID <= n.cfg.ID || r.ID >= n.cfg.Population:
			reason = fmt.Sprintf("id %d out of dialer range", r.ID)
		case r.Population != n.cfg.Population:
			reason = fmt.Sprintf("population %d, want %d", r.Population, n.cfg.Population)
		case r.Fingerprint != n.fp:
			reason = "run configuration fingerprint mismatch"
		}
		if reason != "" {
			wire.WriteFrame(conn, marshalReject(reason))
			conn.Close()
			return
		}
		if reason := n.links[r.ID].handleResume(conn, r); reason != "" {
			wire.WriteFrame(conn, marshalReject(reason))
			conn.Close()
		}
	default:
		conn.Close()
	}
}

func (l *link) hasConn() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.conn != nil
}

// epochEnv adapts one epoch of the mesh to core.Env: the inbox holds
// the previous epoch's payloads (ascending sender id, per-sender FIFO —
// the simulator's delivery order), sends go out tagged with the current
// epoch, and peer sampling comes from the engine-equivalent Sampler.
type epochEnv struct {
	n       *node
	epoch   int
	inbox   []p2p.Message
	sendErr error
}

func (e *epochEnv) ID() p2p.NodeID       { return p2p.NodeID(e.n.cfg.ID) }
func (e *epochEnv) Cycle() int           { return e.epoch }
func (e *epochEnv) PopulationSize() int  { return e.n.cfg.Population }
func (e *epochEnv) AliveCount() int      { return e.n.cfg.Population }
func (e *epochEnv) Inbox() []p2p.Message { return e.inbox }
func (e *epochEnv) RandomPeer() (p2p.NodeID, bool) {
	return e.n.sampler.RandomPeer()
}
func (e *epochEnv) RandomPeers(k int) []p2p.NodeID {
	return e.n.sampler.RandomPeers(k)
}

// Send marshals the payload immediately (the participant may reuse its
// buffers after Send returns) and hands one data frame to the peer's
// supervised link. Under grace a down link absorbs the frame into its
// retransmit ring instead of failing the send.
func (e *epochEnv) Send(to p2p.NodeID, payload any, bytes int) error {
	l := e.n.links[int(to)]
	if l == nil {
		return fmt.Errorf("transport: send to unknown peer %d", to)
	}
	raw, err := e.n.core.EncodePayload(payload)
	if err != nil {
		e.sendErr = err
		return err
	}
	if err := l.send(e.epoch, marshalData(e.epoch, raw)); err != nil {
		e.sendErr = err
		return err
	}
	return nil
}

// runEpochs drives the coordinator-free epoch clock until the whole
// population has terminated. Epoch e of the mesh is cycle e of the
// simulation contract: payloads sent at e are stepped at e+1.
func (n *node) runEpochs() error {
	limit := n.core.MaxCycles()
	every := n.cfg.checkpointEvery()
	skipStep := n.barrierPending
	for epoch := n.startEpoch; epoch < limit; epoch++ {
		if !skipStep {
			if n.interrupted() {
				return n.shutdown(epoch, false)
			}
			inbox, err := n.buildInbox(n.pendingData[epoch-1])
			if err != nil {
				return err
			}
			delete(n.pendingData, epoch-1)

			env := &epochEnv{n: n, epoch: epoch, inbox: inbox}
			n.core.Step(env)
			if env.sendErr != nil {
				return env.sendErr
			}

			done := n.core.Done()
			for _, l := range n.links {
				if l == nil {
					continue
				}
				if err := l.send(epoch, marshalTick(epoch, done)); err != nil {
					return fmt.Errorf("transport: tick broadcast: %w", err)
				}
			}
		}
		skipStep = false

		allDone, err := n.awaitBarrier(epoch, n.core.Done())
		if errors.Is(err, errBarrierInterrupted) {
			return n.shutdown(epoch, true)
		}
		if err != nil {
			return err
		}
		delete(n.ticks, epoch)
		n.pruneRings(epoch)
		if allDone {
			return n.finishRun(epoch)
		}
		if every > 0 && (epoch+1)%every == 0 {
			if err := n.writeCheckpoint(epoch+1, false); err != nil {
				return err
			}
		}
	}
	return fmt.Errorf("transport: no termination within %d epochs", limit)
}

// shutdown performs a graceful interrupt exit: final checkpoint (when
// configured), bye to every peer, ErrInterrupted to the caller.
func (n *node) shutdown(epoch int, barrierPending bool) error {
	var ckErr error
	if n.cfg.CheckpointDir != "" {
		ckErr = n.writeCheckpoint(epoch, barrierPending)
	}
	for _, l := range n.links {
		if l != nil {
			l.sendBye()
		}
	}
	n.cfg.logf("node %d interrupted at epoch %d (barrier pending: %v)", n.cfg.ID, epoch, barrierPending)
	if ckErr != nil {
		return fmt.Errorf("%w (checkpoint failed: %v)", ErrInterrupted, ckErr)
	}
	return ErrInterrupted
}

// finishRun broadcasts the orderly leave after the whole population
// disclosed its final iteration.
func (n *node) finishRun(epoch int) error {
	n.cfg.logf("node %d terminated at epoch %d", n.cfg.ID, epoch)
	for _, l := range n.links {
		if l != nil {
			l.sendBye()
		}
	}
	return nil
}

// pruneRings drops retransmit-ring frames old enough that every peer —
// including one resuming from its oldest possible checkpoint — provably
// received them. While a peer is down the barrier stalls, so epochs
// stop advancing and pruning naturally pauses with them.
func (n *node) pruneRings(epoch int) {
	retention := 2*n.cfg.checkpointEvery() + 4
	before := epoch - retention
	if before <= 0 {
		return
	}
	for _, l := range n.links {
		if l != nil {
			l.prune(before)
		}
	}
}

// awaitBarrier blocks until every peer's tick for the given epoch has
// arrived, buffering any messages for later epochs. It reports whether
// the entire population (peers and self) has terminated. Epoch traffic
// that arrived while this node was still in the key ceremony (backlog)
// is replayed first, preserving per-sender FIFO order.
//
// Under grace the barrier outlasts the epoch timeout as long as a down
// link is still within its grace window (a recovering peer also gets a
// fresh epoch timeout from the moment its link resumes); when the
// barrier finally fails, the error names every peer whose tick is
// missing and the state of its link.
func (n *node) awaitBarrier(epoch int, selfDone bool) (bool, error) {
	timeout := time.NewTimer(n.cfg.EpochTimeout)
	defer timeout.Stop()
	for len(n.ticks[epoch]) < n.cfg.Population-1 {
		var m inMsg
		if len(n.backlog) > 0 {
			m = n.backlog[0]
			n.backlog = n.backlog[1:]
		} else {
			select {
			case m = <-n.in:
				if m.seq > 0 {
					n.procSeq[m.from] = m.seq
				}
			case <-n.cfg.Interrupt:
				return false, errBarrierInterrupted
			case <-timeout.C:
				wait, state := n.barrierState(epoch)
				if wait {
					timeout.Reset(gracePollInterval)
					continue
				}
				return false, fmt.Errorf("transport: epoch %d barrier timed out after %v (%d/%d ticks); %s", epoch, n.cfg.EpochTimeout, len(n.ticks[epoch]), n.cfg.Population-1, state)
			}
		}
		if m.err != nil {
			return false, fmt.Errorf("transport: peer %d connection failed at epoch %d: %w", m.from, epoch, m.err)
		}
		switch m.kind {
		case mtTick:
			if m.epoch < epoch {
				return false, fmt.Errorf("transport: peer %d re-ticked past epoch %d", m.from, m.epoch)
			}
			et := n.ticks[m.epoch]
			if et == nil {
				et = map[int]bool{}
				n.ticks[m.epoch] = et
			}
			et[m.from] = m.done
		case mtData:
			if m.epoch < epoch {
				return false, fmt.Errorf("transport: peer %d sent stale data for epoch %d at barrier %d", m.from, m.epoch, epoch)
			}
			ed := n.pendingData[m.epoch]
			if ed == nil {
				ed = map[int][][]byte{}
				n.pendingData[m.epoch] = ed
			}
			ed[m.from] = append(ed[m.from], m.payload)
		case mtBye:
			// A leave is orderly only after this barrier shows the
			// whole population done. Under grace, a mid-run bye is an
			// interrupted peer that may come back (its link is torn
			// down and the grace window takes over); without grace it
			// breaks the fault-free contract.
			n.left[m.from] = true
			if _, ticked := n.ticks[epoch][m.from]; !ticked {
				if n.cfg.Grace > 0 {
					continue
				}
				return false, fmt.Errorf("transport: peer %d left the mesh at epoch %d", m.from, epoch)
			}
		case mtKey:
			return false, fmt.Errorf("transport: peer %d sent a key-ceremony frame at epoch %d", m.from, epoch)
		}
	}
	if !selfDone {
		return false, nil
	}
	for _, done := range n.ticks[epoch] {
		if !done {
			return false, nil
		}
	}
	return true, nil
}

// barrierState decides whether a timed-out barrier should keep waiting
// (grace) and describes the missing peers' link states for the failure
// diagnostic either way.
func (n *node) barrierState(epoch int) (wait bool, state string) {
	now := time.Now()
	var missing []string
	for id, l := range n.links {
		if l == nil {
			continue
		}
		down, since, lastResume := l.state()
		_, ticked := n.ticks[epoch][id]
		if down {
			// A down link within its grace window explains any missing
			// tick — including ticks from healthy peers that are
			// themselves parked waiting for the same down peer.
			if n.cfg.Grace > 0 && now.Sub(since) < n.cfg.Grace {
				wait = true
			}
			if !ticked {
				missing = append(missing, fmt.Sprintf("peer %d (link down %v)", id, now.Sub(since).Round(time.Millisecond)))
			}
			continue
		}
		if !ticked {
			// A recently resumed link gets a fresh epoch timeout: its
			// backlog replay and catch-up stepping take time.
			if n.cfg.Grace > 0 && !lastResume.IsZero() && now.Sub(lastResume) < n.cfg.EpochTimeout {
				wait = true
			}
			missing = append(missing, fmt.Sprintf("peer %d (link up)", id))
		}
	}
	if len(missing) == 0 {
		return wait, "no ticks missing"
	}
	return wait, "missing ticks from: " + strings.Join(missing, ", ")
}

// buildInbox decodes one epoch's buffered payloads into the simulator's
// delivery order: ascending sender id, per-sender arrival (FIFO) order.
func (n *node) buildInbox(bySender map[int][][]byte) ([]p2p.Message, error) {
	if len(bySender) == 0 {
		return nil, nil
	}
	senders := make([]int, 0, len(bySender))
	for from := range bySender {
		senders = append(senders, from)
	}
	sort.Ints(senders)
	var inbox []p2p.Message
	for _, from := range senders {
		for _, raw := range bySender[from] {
			payload, err := n.core.DecodePayload(raw)
			if err != nil {
				return nil, fmt.Errorf("transport: bad payload from peer %d: %w", from, err)
			}
			inbox = append(inbox, p2p.Message{From: p2p.NodeID(from), Payload: payload, Bytes: len(raw)})
		}
	}
	return inbox, nil
}
