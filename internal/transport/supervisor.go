package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"chiaroscuro/internal/wire"
)

// supervisor.go is the per-peer link layer that makes the mesh
// crash-tolerant. Every peer connection is owned by a link, which
//
//   - tags every post-handshake frame with a monotonic sequence number
//     (an 8-byte big-endian prefix inside the wire frame), so delivery
//     stays exactly-once and FIFO across reconnects;
//   - keeps a bounded ring of sent frames for retransmission, pruned by
//     epoch once the barrier protocol proves the peer must have them;
//   - bounds every write with a deadline and every read with an idle
//     deadline, so a dead peer can neither block a sender forever nor
//     leave a silent half-open connection behind;
//   - redials a broken connection (dialer side only — the original dial
//     roles are preserved) with deterministic capped backoff, re-running
//     the mtResume handshake and retransmitting whatever the peer
//     missed.
//
// With Config.Grace == 0 none of the tolerance engages: the first link
// error is delivered as a fatal inMsg, the legacy fail-fast contract.

// sentFrame is one retransmittable frame: the fully framed bytes (seq
// prefix included) plus the epoch it belongs to, which drives pruning.
type sentFrame struct {
	seq   uint64
	epoch int
	frame []byte
}

// link supervises the connection to one peer.
type link struct {
	n          *node
	peer       int
	dialerSide bool // this node dials (peer id is lower)

	mu         sync.Mutex
	conn       net.Conn
	gen        int // bumped on every conn install/teardown; gates stale readLoops
	down       bool
	downSince  time.Time
	lastResume time.Time // when the link last came back up via resume
	redialing  bool

	outSeq uint64      // last sequence number assigned to an outgoing frame
	inSeq  uint64      // last sequence number delivered from the peer
	pruned uint64      // highest sequence number dropped from the ring
	ring   []sentFrame // unacknowledged frames, ascending seq
}

func newLink(n *node, peer int) *link {
	return &link{n: n, peer: peer, dialerSide: peer < n.cfg.ID}
}

// state returns a snapshot of the link's liveness for barrier
// diagnostics and grace accounting.
func (l *link) state() (down bool, since, lastResume time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down, l.downSince, l.lastResume
}

// send assigns the next sequence number to the inner frame, records it
// in the retransmit ring, and writes it under the configured write
// deadline. Under grace a write failure (or an already-down link) is
// not an error: the frame waits in the ring for the resume handshake.
func (l *link) send(epoch int, inner []byte) error {
	l.mu.Lock()
	l.outSeq++
	framed := make([]byte, 8+len(inner))
	binary.BigEndian.PutUint64(framed, l.outSeq)
	copy(framed[8:], inner)
	l.ring = append(l.ring, sentFrame{seq: l.outSeq, epoch: epoch, frame: framed})
	if l.down || l.conn == nil {
		if l.n.cfg.Grace > 0 {
			l.mu.Unlock()
			return nil
		}
		l.mu.Unlock()
		return fmt.Errorf("transport: send to peer %d: link down", l.peer)
	}
	l.conn.SetWriteDeadline(time.Now().Add(l.n.cfg.writeTimeout()))
	if err := wire.WriteFrame(l.conn, framed); err != nil {
		if l.n.cfg.Grace > 0 {
			redial := l.markDownLocked(err)
			l.mu.Unlock()
			if redial {
				go l.redialLoop()
			}
			return nil
		}
		l.mu.Unlock()
		return fmt.Errorf("transport: send to peer %d: %w", l.peer, err)
	}
	l.mu.Unlock()
	return nil
}

// sendBye writes the departure notice as an unsequenced link-control
// frame (a bare 1-byte frame, like the handshake frames): it consumes
// no sequence number and never enters the retransmit ring, so a node
// that checkpoints, says bye, and later resumes re-issues its next
// protocol frame under exactly the seq the peer expects — a sequenced
// bye would make the survivor drop the resumed node's first real frame
// as a duplicate. Best-effort: a peer we cannot reach learns of the
// departure from the dead link instead.
func (l *link) sendBye() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.down || l.conn == nil {
		return
	}
	l.conn.SetWriteDeadline(time.Now().Add(l.n.cfg.writeTimeout()))
	wire.WriteFrame(l.conn, marshalBye())
}

// markDownLocked tears the current connection down (l.mu held) and
// reports whether the caller should start a redial loop. It never
// delivers the fatal error itself — under grace there is nothing fatal,
// and without grace the caller owns the error path.
func (l *link) markDownLocked(cause error) (startRedial bool) {
	l.gen++
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	if !l.down {
		l.down = true
		l.downSince = time.Now()
		l.n.cfg.logf("node %d: link to peer %d down: %v", l.n.cfg.ID, l.peer, cause)
	}
	if l.n.cfg.Grace > 0 && l.dialerSide && !l.redialing {
		l.redialing = true
		return true
	}
	return false
}

// markDown is the unlocked entry point used by read loops. gen fences
// out loops reading from a connection that was already replaced. With
// grace disabled the error is delivered as fatal, preserving the
// legacy behavior.
func (l *link) markDown(gen int, cause error) {
	l.mu.Lock()
	if l.gen != gen || l.n.stopped() {
		l.mu.Unlock()
		return
	}
	redial := l.markDownLocked(cause)
	l.mu.Unlock()
	if l.n.cfg.Grace <= 0 {
		l.n.deliver(inMsg{from: l.peer, err: cause})
		return
	}
	if redial {
		go l.redialLoop()
	}
}

// installConn adopts a fresh connection for this link (formation join
// or completed resume handshake), retransmits every ring frame beyond
// what the peer acknowledged, and starts the read loop. resumed marks a
// post-outage reinstall, which grants the peer a fresh barrier budget.
func (l *link) installConn(conn net.Conn, peerLastSeq uint64, resumed bool) {
	l.mu.Lock()
	if l.n.stopped() {
		l.mu.Unlock()
		conn.Close()
		return
	}
	if l.conn != nil {
		l.conn.Close()
	}
	l.gen++
	gen := l.gen
	l.conn = conn
	l.down = false
	l.downSince = time.Time{}
	l.redialing = false
	if resumed {
		l.lastResume = time.Now()
	}
	for _, sf := range l.ring {
		if sf.seq <= peerLastSeq {
			continue
		}
		conn.SetWriteDeadline(time.Now().Add(l.n.cfg.writeTimeout()))
		if err := wire.WriteFrame(conn, sf.frame); err != nil {
			redial := l.markDownLocked(fmt.Errorf("retransmit seq %d: %w", sf.seq, err))
			l.mu.Unlock()
			if l.n.cfg.Grace <= 0 {
				l.n.deliver(inMsg{from: l.peer, err: err})
			} else if redial {
				go l.redialLoop()
			}
			return
		}
	}
	l.mu.Unlock()
	if resumed {
		l.n.cfg.logf("node %d: link to peer %d resumed (acked seq %d)", l.n.cfg.ID, l.peer, peerLastSeq)
	}
	go l.readLoop(gen, conn)
}

// accept applies the sequencing rules to one received frame (l.mu
// held briefly): duplicates from retransmission are dropped, the next
// expected frame is delivered, and a sequence gap — possible only if
// the peer pruned frames we never saw — is fatal.
func (l *link) accept(gen int, framed []byte) (inner []byte, fresh bool, err error) {
	if len(framed) < 8 {
		return nil, false, fmt.Errorf("transport: peer %d sent a frame below the sequence header", l.peer)
	}
	seq := binary.BigEndian.Uint64(framed)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.gen != gen {
		return nil, false, nil // stale connection; drop silently
	}
	switch {
	case seq <= l.inSeq:
		return nil, false, nil // duplicate from a resume retransmit
	case seq == l.inSeq+1:
		l.inSeq = seq
		return framed[8:], true, nil
	default:
		return nil, false, fmt.Errorf("transport: peer %d frame gap: got seq %d, want %d", l.peer, seq, l.inSeq+1)
	}
}

// readLoop parses sequenced frames from one connection until it dies
// or is replaced. Each read is bounded by an idle deadline generous
// enough to cover a full barrier stall plus the grace window.
func (l *link) readLoop(gen int, conn net.Conn) {
	idle := 2*l.n.cfg.EpochTimeout + l.n.cfg.Grace
	for {
		conn.SetReadDeadline(time.Now().Add(idle))
		framed, err := wire.ReadFrame(conn)
		if err != nil {
			l.markDown(gen, err)
			return
		}
		if len(framed) == 1 && framed[0] == mtBye {
			// Unsequenced link-control bye: the peer is leaving — either
			// the run ended or the peer was interrupted and may come
			// back. Under grace, tear the link down so the dialer side
			// starts probing for a restart (at an orderly end of run the
			// probe dies with n.stop); without grace, just stop reading,
			// so the peer's subsequent close is never surfaced as an
			// error — the barrier decides whether the bye was orderly.
			l.mu.Lock()
			stale := l.gen != gen
			l.mu.Unlock()
			if stale {
				return
			}
			l.n.deliver(inMsg{from: l.peer, kind: mtBye})
			if l.n.cfg.Grace > 0 {
				l.markDown(gen, errPeerLeft)
			}
			return
		}
		inner, fresh, err := l.accept(gen, framed)
		if err != nil {
			l.mu.Lock()
			stale := l.gen != gen
			l.mu.Unlock()
			if !stale {
				l.n.deliver(inMsg{from: l.peer, err: err})
			}
			return
		}
		if !fresh {
			l.mu.Lock()
			stale := l.gen != gen
			l.mu.Unlock()
			if stale {
				return
			}
			continue
		}
		m := inMsg{from: l.peer, seq: binary.BigEndian.Uint64(framed)}
		if len(inner) == 0 {
			m.err = fmt.Errorf("transport: empty frame")
		} else {
			m.kind = inner[0]
			switch inner[0] {
			case mtTick:
				m.epoch, m.done, m.err = parseTick(inner[1:])
			case mtData:
				m.epoch, m.payload, m.err = parseData(inner[1:])
			case mtKey:
				// Ceremony frames reuse the epoch slot for the round tag.
				m.epoch, m.payload, m.err = parseKey(inner[1:])
			default:
				// mtBye never travels sequenced (see sendBye).
				m.err = fmt.Errorf("transport: unexpected frame kind 0x%02x", inner[0])
			}
		}
		l.n.deliver(m)
		if m.err != nil {
			return
		}
	}
}

// errPeerLeft marks a voluntary departure (bye) rather than a network
// failure.
var errPeerLeft = fmt.Errorf("transport: peer sent bye")

// prune drops ring frames from epochs old enough that the barrier
// protocol proves every peer received them (a peer resuming from a
// checkpoint can be at most the checkpoint cadence plus one barrier
// behind). pruned records the watermark so a resume asking for dropped
// frames is detected instead of silently gapped.
func (l *link) prune(beforeEpoch int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	keep := 0
	for _, sf := range l.ring {
		if sf.epoch < beforeEpoch {
			if sf.seq > l.pruned {
				l.pruned = sf.seq
			}
			continue
		}
		l.ring[keep] = sf
		keep++
	}
	for i := keep; i < len(l.ring); i++ {
		l.ring[i] = sentFrame{}
	}
	l.ring = l.ring[:keep]
}

// redialLoop re-establishes a broken dialer-side link: deterministic
// capped backoff, re-resolved peer address each attempt (a restarted
// peer publishes a new port in rendezvous mode), then the mtResume
// handshake. It runs until it succeeds, the peer rejects the resume
// (fatal), or the node stops; giving up on a peer that stays dead is
// the barrier's job (grace expiry), not the dialer's.
func (l *link) redialLoop() {
	seed := backoffSeed(l.n.fp, l.n.cfg.ID, l.peer)
	for attempt := 0; ; attempt++ {
		select {
		case <-time.After(backoffDelay(seed, attempt)):
		case <-l.n.stop:
			return
		}
		l.mu.Lock()
		lastSeq := l.inSeq
		stillDown := l.down
		l.mu.Unlock()
		if !stillDown {
			return
		}
		addr, err := l.n.peerAddr(l.peer)
		if err != nil {
			continue
		}
		conn, err := l.n.dial(addr, l.n.cfg.EpochTimeout)
		if err != nil {
			continue
		}
		conn.SetDeadline(time.Now().Add(l.n.cfg.EpochTimeout))
		r := resume{ID: l.n.cfg.ID, Population: l.n.cfg.Population, Fingerprint: l.n.fp, LastSeq: lastSeq}
		if err := wire.WriteFrame(conn, marshalResume(r)); err != nil {
			conn.Close()
			continue
		}
		frame, err := wire.ReadFrame(conn)
		if err != nil || len(frame) == 0 {
			conn.Close()
			continue
		}
		switch frame[0] {
		case mtResumeOK:
			id, peerLast, err := parseResumeOK(frame[1:])
			if err != nil || id != l.peer {
				conn.Close()
				continue
			}
			conn.SetDeadline(time.Time{})
			l.installConn(conn, peerLast, true)
			return
		case mtReject:
			reason, _ := parseReject(frame[1:])
			conn.Close()
			l.n.deliver(inMsg{from: l.peer, err: fmt.Errorf("transport: peer %d rejected resume: %s", l.peer, reason)})
			return
		default:
			conn.Close()
		}
	}
}

// handleResume serves the acceptor side of the reconnect handshake on
// a fresh inbound connection: acknowledge with our own lastSeqSeen and
// adopt the connection (retransmitting from the ring). Returns an
// error string to reject with, or "" on success.
func (l *link) handleResume(conn net.Conn, r resume) string {
	l.mu.Lock()
	if r.LastSeq < l.pruned {
		l.mu.Unlock()
		return fmt.Sprintf("resume from seq %d but frames up to %d were pruned", r.LastSeq, l.pruned)
	}
	lastSeq := l.inSeq
	l.mu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(l.n.cfg.writeTimeout()))
	if err := wire.WriteFrame(conn, marshalResumeOK(l.n.cfg.ID, lastSeq)); err != nil {
		conn.Close()
		return "" // handshake write failed; peer will redial
	}
	conn.SetDeadline(time.Time{})
	l.installConn(conn, r.LastSeq, true)
	return ""
}
