package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"chiaroscuro/internal/wire"
)

// checkpoint.go persists a node's complete resumable state between
// epochs: the core participant snapshot (which embeds this node's key
// share on the Damgård–Jurik backend), the peer sampler's RNG state,
// every link's sequence numbers and retransmit ring, and the barrier
// buffers (parked payloads, ticks, leftover ceremony backlog). A daemon
// SIGKILLed mid-run restarts with -resume, restores this file, replays
// the resume handshake against the survivors, and continues the run
// with disclosed histories bit-identical to an uninterrupted one.
//
// The file is written atomically (temp + fsync + rename + directory
// fsync), so a crash during the write leaves the previous checkpoint
// intact, never a torn file.

const (
	ckptMagic   uint32 = 0xC1A8C4B7
	ckptVersion uint32 = 1
	// ckptMaxCount bounds every element count read from a checkpoint
	// before allocation, so corrupt or adversarial length fields cannot
	// demand unbounded memory.
	ckptMaxCount = 1 << 20
)

// errCheckpoint prefixes every decode failure.
var errCheckpoint = errors.New("transport: invalid checkpoint")

func ckptErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errCheckpoint, fmt.Sprintf(format, args...))
}

// linkState is one link's checkpointed sequencing state.
type linkState struct {
	outSeq uint64
	inSeq  uint64
	pruned uint64
	ring   []sentFrame
}

// checkpoint is the decoded form of one checkpoint file.
type checkpoint struct {
	fingerprint    uint64
	id             int
	population     int
	nextEpoch      int
	barrierPending bool
	samplerState   uint64
	coreSnap       []byte
	links          map[int]linkState
	pendingData    map[int]map[int][][]byte
	ticks          map[int]map[int]bool
	left           map[int]bool
	backlog        []inMsg
}

func checkpointPath(cfg Config) string {
	return filepath.Join(cfg.CheckpointDir, fmt.Sprintf("%d.ckpt", cfg.ID))
}

func appendU64(buf []byte, v uint64) []byte {
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], v)
	return wire.AppendBytes(buf, u[:])
}

func readU64(fr *wire.FieldReader) (uint64, error) {
	b, err := fr.Bytes()
	if err != nil {
		return 0, err
	}
	if len(b) != 8 {
		return 0, ckptErr("u64 field is %d bytes", len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}

func encodeCheckpoint(ck *checkpoint) []byte {
	buf := make([]byte, 0, 1024+len(ck.coreSnap))
	buf = wire.AppendUint32(buf, ckptMagic)
	buf = wire.AppendUint32(buf, ckptVersion)
	buf = appendU64(buf, ck.fingerprint)
	buf = wire.AppendUint32(buf, uint32(ck.id))
	buf = wire.AppendUint32(buf, uint32(ck.population))
	buf = wire.AppendUint32(buf, uint32(ck.nextEpoch))
	flag := uint32(0)
	if ck.barrierPending {
		flag = 1
	}
	buf = wire.AppendUint32(buf, flag)
	buf = appendU64(buf, ck.samplerState)
	buf = wire.AppendBytes(buf, ck.coreSnap)

	peers := make([]int, 0, len(ck.links))
	for id := range ck.links {
		peers = append(peers, id)
	}
	sort.Ints(peers)
	buf = wire.AppendUint32(buf, uint32(len(peers)))
	for _, id := range peers {
		ls := ck.links[id]
		buf = wire.AppendUint32(buf, uint32(id))
		buf = appendU64(buf, ls.outSeq)
		buf = appendU64(buf, ls.inSeq)
		buf = appendU64(buf, ls.pruned)
		buf = wire.AppendUint32(buf, uint32(len(ls.ring)))
		for _, sf := range ls.ring {
			buf = appendU64(buf, sf.seq)
			buf = wire.AppendUint32(buf, uint32(sf.epoch))
			buf = wire.AppendBytes(buf, sf.frame)
		}
	}

	buf = appendEpochPayloads(buf, ck.pendingData)
	buf = appendEpochTicks(buf, ck.ticks)

	leftIDs := make([]int, 0, len(ck.left))
	for id := range ck.left {
		leftIDs = append(leftIDs, id)
	}
	sort.Ints(leftIDs)
	buf = wire.AppendUint32(buf, uint32(len(leftIDs)))
	for _, id := range leftIDs {
		buf = wire.AppendUint32(buf, uint32(id))
	}

	buf = wire.AppendUint32(buf, uint32(len(ck.backlog)))
	for _, m := range ck.backlog {
		buf = wire.AppendUint32(buf, uint32(m.from))
		buf = wire.AppendUint32(buf, uint32(m.kind))
		buf = wire.AppendUint32(buf, uint32(m.epoch))
		d := uint32(0)
		if m.done {
			d = 1
		}
		buf = wire.AppendUint32(buf, d)
		buf = wire.AppendBytes(buf, m.payload)
	}
	return buf
}

func appendEpochPayloads(buf []byte, data map[int]map[int][][]byte) []byte {
	epochs := make([]int, 0, len(data))
	for e := range data {
		epochs = append(epochs, e)
	}
	sort.Ints(epochs)
	buf = wire.AppendUint32(buf, uint32(len(epochs)))
	for _, e := range epochs {
		buf = wire.AppendUint32(buf, uint32(e))
		senders := make([]int, 0, len(data[e]))
		for s := range data[e] {
			senders = append(senders, s)
		}
		sort.Ints(senders)
		buf = wire.AppendUint32(buf, uint32(len(senders)))
		for _, s := range senders {
			buf = wire.AppendUint32(buf, uint32(s))
			buf = wire.AppendUint32(buf, uint32(len(data[e][s])))
			for _, p := range data[e][s] {
				buf = wire.AppendBytes(buf, p)
			}
		}
	}
	return buf
}

func appendEpochTicks(buf []byte, ticks map[int]map[int]bool) []byte {
	epochs := make([]int, 0, len(ticks))
	for e := range ticks {
		epochs = append(epochs, e)
	}
	sort.Ints(epochs)
	buf = wire.AppendUint32(buf, uint32(len(epochs)))
	for _, e := range epochs {
		buf = wire.AppendUint32(buf, uint32(e))
		senders := make([]int, 0, len(ticks[e]))
		for s := range ticks[e] {
			senders = append(senders, s)
		}
		sort.Ints(senders)
		buf = wire.AppendUint32(buf, uint32(len(senders)))
		for _, s := range senders {
			buf = wire.AppendUint32(buf, uint32(s))
			d := uint32(0)
			if ticks[e][s] {
				d = 1
			}
			buf = wire.AppendUint32(buf, d)
		}
	}
	return buf
}

// decodeCheckpoint parses and validates one checkpoint file. It is
// hardened like the wire decoders: arbitrary bytes produce an error,
// never a panic or unbounded allocation (FuzzDecodeCheckpoint).
func decodeCheckpoint(b []byte) (*checkpoint, error) {
	fr := wire.NewFieldReader(b)
	magic, err := fr.Uint32()
	if err != nil {
		return nil, ckptErr("%v", err)
	}
	if magic != ckptMagic {
		return nil, ckptErr("bad magic 0x%08x", magic)
	}
	version, err := fr.Uint32()
	if err != nil {
		return nil, ckptErr("%v", err)
	}
	if version != ckptVersion {
		return nil, ckptErr("version %d, want %d", version, ckptVersion)
	}
	ck := &checkpoint{
		links:       map[int]linkState{},
		pendingData: map[int]map[int][][]byte{},
		ticks:       map[int]map[int]bool{},
		left:        map[int]bool{},
	}
	if ck.fingerprint, err = readU64(fr); err != nil {
		return nil, err
	}
	id, err := fr.Uint32()
	if err != nil {
		return nil, ckptErr("%v", err)
	}
	pop, err := fr.Uint32()
	if err != nil {
		return nil, ckptErr("%v", err)
	}
	if pop < 2 || pop > ckptMaxCount {
		return nil, ckptErr("population %d out of range", pop)
	}
	if id >= pop {
		return nil, ckptErr("id %d outside population %d", id, pop)
	}
	ck.id, ck.population = int(id), int(pop)
	epoch, err := fr.Uint32()
	if err != nil {
		return nil, ckptErr("%v", err)
	}
	ck.nextEpoch = int(epoch)
	flag, err := fr.Uint32()
	if err != nil {
		return nil, ckptErr("%v", err)
	}
	if flag > 1 {
		return nil, ckptErr("barrier flag %d", flag)
	}
	ck.barrierPending = flag == 1
	if ck.samplerState, err = readU64(fr); err != nil {
		return nil, err
	}
	if ck.coreSnap, err = fr.Bytes(); err != nil {
		return nil, ckptErr("core snapshot: %v", err)
	}

	nLinks, err := fr.Uint32()
	if err != nil {
		return nil, ckptErr("%v", err)
	}
	if nLinks >= pop {
		return nil, ckptErr("%d links for population %d", nLinks, pop)
	}
	for i := uint32(0); i < nLinks; i++ {
		peer, err := fr.Uint32()
		if err != nil {
			return nil, ckptErr("%v", err)
		}
		if peer >= pop || peer == id {
			return nil, ckptErr("link peer %d out of range", peer)
		}
		if _, dup := ck.links[int(peer)]; dup {
			return nil, ckptErr("duplicate link peer %d", peer)
		}
		var ls linkState
		if ls.outSeq, err = readU64(fr); err != nil {
			return nil, err
		}
		if ls.inSeq, err = readU64(fr); err != nil {
			return nil, err
		}
		if ls.pruned, err = readU64(fr); err != nil {
			return nil, err
		}
		nRing, err := fr.Uint32()
		if err != nil {
			return nil, ckptErr("%v", err)
		}
		if nRing > ckptMaxCount {
			return nil, ckptErr("ring of %d frames", nRing)
		}
		prev := ls.pruned
		for j := uint32(0); j < nRing; j++ {
			var sf sentFrame
			if sf.seq, err = readU64(fr); err != nil {
				return nil, err
			}
			if sf.seq <= prev {
				return nil, ckptErr("ring seq %d not ascending past %d", sf.seq, prev)
			}
			prev = sf.seq
			e, err := fr.Uint32()
			if err != nil {
				return nil, ckptErr("%v", err)
			}
			sf.epoch = int(e)
			if sf.frame, err = fr.Bytes(); err != nil {
				return nil, ckptErr("ring frame: %v", err)
			}
			if len(sf.frame) < 8 {
				return nil, ckptErr("ring frame of %d bytes", len(sf.frame))
			}
			if got := binary.BigEndian.Uint64(sf.frame); got != sf.seq {
				return nil, ckptErr("ring frame seq %d does not match entry %d", got, sf.seq)
			}
			ls.ring = append(ls.ring, sf)
		}
		if len(ls.ring) > 0 && ls.ring[len(ls.ring)-1].seq > ls.outSeq {
			return nil, ckptErr("ring seq %d beyond outSeq %d", ls.ring[len(ls.ring)-1].seq, ls.outSeq)
		}
		ck.links[int(peer)] = ls
	}

	if err := readEpochPayloads(fr, ck, pop); err != nil {
		return nil, err
	}
	if err := readEpochTicks(fr, ck, pop); err != nil {
		return nil, err
	}

	nLeft, err := fr.Uint32()
	if err != nil {
		return nil, ckptErr("%v", err)
	}
	if nLeft >= pop {
		return nil, ckptErr("%d departed peers for population %d", nLeft, pop)
	}
	for i := uint32(0); i < nLeft; i++ {
		peer, err := fr.Uint32()
		if err != nil {
			return nil, ckptErr("%v", err)
		}
		if peer >= pop {
			return nil, ckptErr("departed peer %d out of range", peer)
		}
		ck.left[int(peer)] = true
	}

	nBacklog, err := fr.Uint32()
	if err != nil {
		return nil, ckptErr("%v", err)
	}
	if nBacklog > ckptMaxCount {
		return nil, ckptErr("backlog of %d messages", nBacklog)
	}
	for i := uint32(0); i < nBacklog; i++ {
		var m inMsg
		from, err := fr.Uint32()
		if err != nil {
			return nil, ckptErr("%v", err)
		}
		if from >= pop || from == id {
			return nil, ckptErr("backlog sender %d out of range", from)
		}
		m.from = int(from)
		kind, err := fr.Uint32()
		if err != nil {
			return nil, ckptErr("%v", err)
		}
		if kind != uint32(mtTick) && kind != uint32(mtData) {
			return nil, ckptErr("backlog kind 0x%02x", kind)
		}
		m.kind = byte(kind)
		e, err := fr.Uint32()
		if err != nil {
			return nil, ckptErr("%v", err)
		}
		m.epoch = int(e)
		d, err := fr.Uint32()
		if err != nil {
			return nil, ckptErr("%v", err)
		}
		if d > 1 {
			return nil, ckptErr("backlog done flag %d", d)
		}
		m.done = d == 1
		if m.payload, err = fr.Bytes(); err != nil {
			return nil, ckptErr("backlog payload: %v", err)
		}
		ck.backlog = append(ck.backlog, m)
	}
	if err := fr.Done(); err != nil {
		return nil, ckptErr("%v", err)
	}
	return ck, nil
}

func readEpochPayloads(fr *wire.FieldReader, ck *checkpoint, pop uint32) error {
	nEpochs, err := fr.Uint32()
	if err != nil {
		return ckptErr("%v", err)
	}
	if nEpochs > ckptMaxCount {
		return ckptErr("%d payload epochs", nEpochs)
	}
	for i := uint32(0); i < nEpochs; i++ {
		e, err := fr.Uint32()
		if err != nil {
			return ckptErr("%v", err)
		}
		if _, dup := ck.pendingData[int(e)]; dup {
			return ckptErr("duplicate payload epoch %d", e)
		}
		nSenders, err := fr.Uint32()
		if err != nil {
			return ckptErr("%v", err)
		}
		if nSenders >= pop {
			return ckptErr("%d payload senders", nSenders)
		}
		bySender := map[int][][]byte{}
		for j := uint32(0); j < nSenders; j++ {
			s, err := fr.Uint32()
			if err != nil {
				return ckptErr("%v", err)
			}
			if s >= pop {
				return ckptErr("payload sender %d out of range", s)
			}
			if _, dup := bySender[int(s)]; dup {
				return ckptErr("duplicate payload sender %d", s)
			}
			nPayloads, err := fr.Uint32()
			if err != nil {
				return ckptErr("%v", err)
			}
			if nPayloads > ckptMaxCount {
				return ckptErr("%d payloads", nPayloads)
			}
			var payloads [][]byte
			for k := uint32(0); k < nPayloads; k++ {
				p, err := fr.Bytes()
				if err != nil {
					return ckptErr("payload: %v", err)
				}
				payloads = append(payloads, p)
			}
			bySender[int(s)] = payloads
		}
		ck.pendingData[int(e)] = bySender
	}
	return nil
}

func readEpochTicks(fr *wire.FieldReader, ck *checkpoint, pop uint32) error {
	nEpochs, err := fr.Uint32()
	if err != nil {
		return ckptErr("%v", err)
	}
	if nEpochs > ckptMaxCount {
		return ckptErr("%d tick epochs", nEpochs)
	}
	for i := uint32(0); i < nEpochs; i++ {
		e, err := fr.Uint32()
		if err != nil {
			return ckptErr("%v", err)
		}
		if _, dup := ck.ticks[int(e)]; dup {
			return ckptErr("duplicate tick epoch %d", e)
		}
		nSenders, err := fr.Uint32()
		if err != nil {
			return ckptErr("%v", err)
		}
		if nSenders >= pop {
			return ckptErr("%d tick senders", nSenders)
		}
		bySender := map[int]bool{}
		for j := uint32(0); j < nSenders; j++ {
			s, err := fr.Uint32()
			if err != nil {
				return ckptErr("%v", err)
			}
			if s >= pop {
				return ckptErr("tick sender %d out of range", s)
			}
			if _, dup := bySender[int(s)]; dup {
				return ckptErr("duplicate tick sender %d", s)
			}
			d, err := fr.Uint32()
			if err != nil {
				return ckptErr("%v", err)
			}
			if d > 1 {
				return ckptErr("tick done flag %d", d)
			}
			bySender[int(s)] = d == 1
		}
		ck.ticks[int(e)] = bySender
	}
	return nil
}

// writeCheckpoint captures the node's full resumable state and writes
// it atomically to the checkpoint file.
func (n *node) writeCheckpoint(nextEpoch int, barrierPending bool) error {
	snap, err := n.core.Snapshot()
	if err != nil {
		return fmt.Errorf("transport: checkpoint: %w", err)
	}
	ck := &checkpoint{
		fingerprint:    n.fp,
		id:             n.cfg.ID,
		population:     n.cfg.Population,
		nextEpoch:      nextEpoch,
		barrierPending: barrierPending,
		samplerState:   n.sampler.State(),
		coreSnap:       snap,
		links:          map[int]linkState{},
		pendingData:    n.pendingData,
		ticks:          n.ticks,
		left:           n.left,
		backlog:        n.backlog,
	}
	for id, l := range n.links {
		if l == nil {
			continue
		}
		l.mu.Lock()
		// inSeq is the PROCESSED watermark, not the read loop's accept
		// watermark: frames accepted but still queued in n.in would be
		// lost by a restart, so the resume handshake must re-request
		// them from the peer's ring.
		ls := linkState{outSeq: l.outSeq, inSeq: n.procSeq[id], pruned: l.pruned}
		ls.ring = append(ls.ring, l.ring...)
		l.mu.Unlock()
		ck.links[id] = ls
	}
	if err := writeFileAtomic(checkpointPath(n.cfg), encodeCheckpoint(ck)); err != nil {
		return fmt.Errorf("transport: checkpoint: %w", err)
	}
	n.cfg.logf("node %d checkpointed epoch %d (barrier pending: %v)", n.cfg.ID, nextEpoch, barrierPending)
	return nil
}

// loadCheckpoint reads and validates the checkpoint for this node and
// run configuration.
func loadCheckpoint(path string, cfg Config, fp uint64) (*checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("transport: resume: %w", err)
	}
	ck, err := decodeCheckpoint(b)
	if err != nil {
		return nil, err
	}
	if ck.fingerprint != fp {
		return nil, ckptErr("checkpoint belongs to a different run configuration")
	}
	if ck.id != cfg.ID {
		return nil, ckptErr("checkpoint belongs to node %d, not %d", ck.id, cfg.ID)
	}
	if ck.population != cfg.Population {
		return nil, ckptErr("checkpoint population %d, want %d", ck.population, cfg.Population)
	}
	return ck, nil
}

// restoreFromCheckpoint installs the checkpointed transport state into
// a freshly built node (links exist but carry no connections yet).
// Every link starts down: formMeshResume reconnects them all.
func (n *node) restoreFromCheckpoint(ck *checkpoint) {
	n.startEpoch = ck.nextEpoch
	n.barrierPending = ck.barrierPending
	n.pendingData = ck.pendingData
	n.ticks = ck.ticks
	n.left = ck.left
	n.backlog = ck.backlog
	now := time.Now()
	for id, l := range n.links {
		if l == nil {
			continue
		}
		ls := ck.links[id]
		l.mu.Lock()
		l.outSeq = ls.outSeq
		l.inSeq = ls.inSeq
		l.pruned = ls.pruned
		l.ring = ls.ring
		l.down = true
		l.downSince = now
		l.mu.Unlock()
		n.procSeq[id] = ls.inSeq
	}
}

// writeFileAtomic writes data to path with crash-safe durability: the
// bytes are written to a temp file in the same directory, fsynced,
// renamed over the target, and the directory entry itself fsynced. A
// reader therefore sees either the old complete file or the new one —
// never a torn write.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
