package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/transport/netchaos"
)

// DaemonMain is the chiaroscurod entry point, factored out of cmd/ so
// the conformance harness can run daemons as re-execs of its own test
// binary (keeping race instrumentation) while cmd/chiaroscurod stays a
// two-line wrapper. It returns the process exit code.
//
// Every daemon of one run must be launched with identical protocol
// flags (-seed, -k, -iters, ...): each process deterministically
// regenerates the whole population's synthetic series from the seed and
// clusters as the participant selected by -id. The mesh handshake
// rejects peers whose configuration fingerprint disagrees.
func DaemonMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chiaroscurod", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		id      = fs.Int("id", -1, "participant id in [0, n)")
		n       = fs.Int("n", 0, "population size (number of participants)")
		listen  = fs.String("listen", "127.0.0.1:0", "TCP listen address")
		peers   = fs.String("peers", "", "comma-separated dial address per node, indexed by id")
		addrDir = fs.String("addr-dir", "", "shared rendezvous directory for address discovery")
		timeout = fs.Duration("epoch-timeout", 30*time.Second, "max wait at one epoch barrier")

		dataset = fs.String("dataset", "cer", "synthetic dataset: cer or tumor")
		seed    = fs.Int64("seed", 1, "run seed (data generation and protocol)")
		k       = fs.Int("k", 3, "number of clusters")
		eps     = fs.Float64("epsilon", 1.0, "differential-privacy budget")
		iters   = fs.Int("iterations", 3, "k-means iterations")
		rounds  = fs.Int("gossip-rounds", 0, "gossip rounds per aggregation (0 = default)")
		window  = fs.Int("decrypt-window", 0, "decryption window in cycles (0 = default)")
		thresh  = fs.Int("decrypt-threshold", 0, "partial decryptions to open (0 = default)")

		backend = fs.String("backend", "plain", "cipher backend: plain (accounted) or dj (threshold Damgård–Jurik, keyed by the distributed ceremony)")
		modBits = fs.Int("modulus-bits", 0, "dj modulus size in bits (0 = default)")
		degree  = fs.Int("degree", 0, "dj generalization degree s (0 = default)")

		grace     = fs.Duration("grace", 0, "tolerate peer link outages up to this long (0 = fail fast)")
		ckptDir   = fs.String("checkpoint-dir", "", "write epoch checkpoints to this directory")
		ckptEvery = fs.Int("checkpoint-every", 0, "epochs between checkpoints (0 = every epoch when -checkpoint-dir is set)")
		resume    = fs.Bool("resume", false, "restore state from the checkpoint in -checkpoint-dir and rejoin the mesh")
		chaos     = fs.String("chaos", "", "deterministic fault-injection scenario (see internal/transport/netchaos)")
		chaosSeed = fs.Int64("chaos-seed", 0, "seed for the chaos scenario's deterministic schedule")

		out     = fs.String("out", "", "write the disclosed history (gob) to this file")
		verbose = fs.Bool("v", false, "log epoch progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := Config{
		ID:              *id,
		Population:      *n,
		Listen:          *listen,
		AddrDir:         *addrDir,
		EpochTimeout:    *timeout,
		Grace:           *grace,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		Resume:          *resume,
	}
	if *peers != "" {
		cfg.Peers = splitPeers(*peers)
	}
	if *verbose {
		cfg.Logf = func(format string, a ...any) {
			fmt.Fprintf(stderr, "chiaroscurod: "+format+"\n", a...)
		}
	}
	if *chaos != "" {
		net, err := netchaos.New(*chaos, *chaosSeed)
		if err != nil {
			fmt.Fprintf(stderr, "chiaroscurod: %v\n", err)
			return 2
		}
		cfg.Dialer = net.Dial
		cfg.Listener = net.Listen
	}

	// A first SIGTERM/SIGINT requests a graceful shutdown (final
	// checkpoint, bye to peers, exit 3); a second one kills the process
	// the default way.
	interrupt := make(chan struct{})
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		<-sigCh
		close(interrupt)
		<-sigCh
		signal.Reset(syscall.SIGTERM, syscall.SIGINT)
		syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
	}()
	cfg.Interrupt = interrupt

	data, err := SyntheticSeries(*dataset, *n, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "chiaroscurod: %v\n", err)
		return 1
	}
	params := core.Params{
		K:                *k,
		Epsilon:          *eps,
		Iterations:       *iters,
		GossipRounds:     *rounds,
		DecryptWindow:    *window,
		DecryptThreshold: *thresh,
		Seed:             *seed,
		ModulusBits:      *modBits,
		Degree:           *degree,
	}
	switch *backend {
	case "plain":
		params.Backend = core.BackendPlainAccounted
	case "dj":
		// The mesh forms keyless and runs the distributed key ceremony
		// before epoch 0; this process will hold only its own share.
		params.Backend = core.BackendDamgardJurik
		params.DKG = true
	default:
		fmt.Fprintf(stderr, "chiaroscurod: unknown backend %q (want plain or dj)\n", *backend)
		return 2
	}

	history, err := Run(cfg, data, params)
	if errors.Is(err, ErrInterrupted) {
		// Distinct exit code: the run was interrupted but its state was
		// checkpointed (when configured); a -resume restart continues it.
		fmt.Fprintf(stderr, "chiaroscurod: %v\n", err)
		return 3
	}
	if err != nil {
		fmt.Fprintf(stderr, "chiaroscurod: %v\n", err)
		return 1
	}

	if *out != "" {
		if err := WriteHistory(*out, history); err != nil {
			fmt.Fprintf(stderr, "chiaroscurod: %v\n", err)
			return 1
		}
	}
	for _, it := range history {
		fmt.Fprintf(stdout, "iteration %d: eps=%.4f displacement=%.6f cycle=%d\n",
			it.Iteration, it.Epsilon, it.Displacement, it.CompletedAtCycle)
	}
	return 0
}

// splitPeers splits a comma-separated address list, preserving empty
// entries (the slot at the node's own id may be blank).
func splitPeers(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

// SyntheticSeries regenerates the run's population data: the named
// synthetic dataset at its default resolution, normalized to [0,1].
// Deterministic in (name, n, seed), which is what lets every daemon
// process hold the full population's series without any distribution
// step — and what the conformance harness uses to build the sequential
// reference run.
func SyntheticSeries(name string, n int, seed int64) ([][]float64, error) {
	d, err := datasets.ByName(name, n, seed)
	if err != nil {
		return nil, err
	}
	d.NormalizeTo01()
	return d.Series, nil
}

// WriteHistory gob-encodes a participant's disclosed history. Gob
// rather than JSON because PerturbedInertia is NaN when inertia
// tracking is off, and the comparison consumer needs the exact bits
// anyway. The file is written atomically (temp + fsync + rename), so a
// daemon killed mid-write leaves either no history file or a complete
// one — never a torn file that gob would misparse.
func WriteHistory(path string, history []core.IterationResult) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(history); err != nil {
		return fmt.Errorf("transport: encode history: %w", err)
	}
	return writeFileAtomic(path, buf.Bytes())
}

// ReadHistory reads a history file written by WriteHistory.
func ReadHistory(path string) ([]core.IterationResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var history []core.IterationResult
	if err := gob.NewDecoder(f).Decode(&history); err != nil {
		return nil, fmt.Errorf("transport: decode history: %w", err)
	}
	return history, nil
}
