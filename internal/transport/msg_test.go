package transport

import (
	"testing"
)

func TestResumeRoundTrip(t *testing.T) {
	want := resume{ID: 3, Population: 7, Fingerprint: 0xFEEDFACE12345678, LastSeq: 42}
	frame := marshalResume(want)
	if frame[0] != mtResume {
		t.Fatalf("frame type 0x%02x, want mtResume", frame[0])
	}
	got, err := parseResume(frame[1:])
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}

func TestResumeOKRoundTrip(t *testing.T) {
	frame := marshalResumeOK(4, 977)
	if frame[0] != mtResumeOK {
		t.Fatalf("frame type 0x%02x, want mtResumeOK", frame[0])
	}
	id, lastSeq, err := parseResumeOK(frame[1:])
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if id != 4 || lastSeq != 977 {
		t.Fatalf("got (%d, %d), want (4, 977)", id, lastSeq)
	}
}

func TestParseResumeRejectsGarbage(t *testing.T) {
	valid := marshalResume(resume{ID: 1, Population: 3, Fingerprint: 9, LastSeq: 2})[1:]
	for i := 0; i < len(valid); i++ {
		if _, err := parseResume(valid[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// Each field is [4-byte length][payload]: the magic value occupies
	// bytes 4-7, the version value bytes 12-15.
	bad := append([]byte(nil), valid...)
	bad[4] ^= 0xFF
	if _, err := parseResume(bad); err == nil {
		t.Error("bad magic accepted")
	}
	ver := append([]byte(nil), valid...)
	ver[15] = 99
	if _, err := parseResume(ver); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := parseResume(append(append([]byte(nil), valid...), 0x01)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// FuzzParseResume hardens the reconnect handshake decoders the same way
// the hello/tick/data decoders already are: arbitrary bytes from a
// half-open or malicious connection must never panic, and anything
// parseResume accepts must re-marshal byte-identically.
func FuzzParseResume(f *testing.F) {
	f.Add(marshalResume(resume{ID: 2, Population: 5, Fingerprint: 0xABCD, LastSeq: 17})[1:])
	f.Add([]byte{})
	f.Add([]byte{0xC1, 0xA8, 0x05, 0xC0})
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := parseResume(b)
		if err != nil {
			// Also drive the resume-ok decoder over the same corpus.
			parseResumeOK(b)
			return
		}
		again := marshalResume(r)[1:]
		if string(again) != string(b) {
			t.Fatalf("accepted resume does not re-marshal identically")
		}
	})
}
