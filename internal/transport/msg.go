package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"chiaroscuro/internal/wire"
)

// Envelope layer: every frame on a mesh connection carries one message,
// tagged with a one-byte type. Handshake messages (hello/welcome/
// reject) appear once per connection at dial time; tick, data and bye
// flow for the lifetime of the mesh. Field encoding reuses the wire
// package's length-prefixed field primitives, so the fuzzed hardening
// of that layer covers the envelope too.

const (
	// helloMagic identifies a Chiaroscuro mesh connection; a dialer
	// that opens with anything else is rejected before any state is
	// allocated for it.
	helloMagic uint32 = 0xC1A805C0
	// meshVersion is the envelope protocol version. Version 2 added
	// per-link frame sequencing and the resume handshake.
	meshVersion uint32 = 2
)

// Message types.
const (
	mtHello   byte = 0x01 // dialer's join handshake
	mtWelcome byte = 0x02 // acceptor's join acknowledgment
	mtReject  byte = 0x03 // acceptor's refusal (reason string)
	mtTick    byte = 0x04 // epoch barrier: sender finished stepping this epoch
	mtData    byte = 0x05 // protocol payload tagged with its send epoch
	mtBye     byte = 0x06 // orderly leave after termination
	mtKey     byte = 0x07 // key-ceremony artifact (round-tagged, pre-epoch)
	mtResume  byte = 0x08 // dialer's reconnect handshake after a link drop
	mtResumeOK byte = 0x09 // acceptor's reconnect acknowledgment
)

// Key-ceremony rounds inside an mtKey frame, mirroring the dkg
// package's three phases.
const (
	keyRoundDeal          = 1
	keyRoundResponse      = 2
	keyRoundJustification = 3
)

// hello is the join handshake: who is dialing, how big the dialer
// thinks the run is, and a fingerprint of its full run configuration.
// Population and fingerprint mismatches are rejected at accept time —
// a process built from different parameters must not join the mesh.
type hello struct {
	ID          int
	Population  int
	Fingerprint uint64
}

func marshalHello(h hello) []byte {
	buf := []byte{mtHello}
	buf = wire.AppendUint32(buf, helloMagic)
	buf = wire.AppendUint32(buf, meshVersion)
	buf = wire.AppendUint32(buf, uint32(h.ID))
	buf = wire.AppendUint32(buf, uint32(h.Population))
	var fp [8]byte
	binary.BigEndian.PutUint64(fp[:], h.Fingerprint)
	return wire.AppendBytes(buf, fp[:])
}

func parseHello(body []byte) (hello, error) {
	fr := wire.NewFieldReader(body)
	magic, err := fr.Uint32()
	if err != nil {
		return hello{}, err
	}
	if magic != helloMagic {
		return hello{}, fmt.Errorf("transport: bad hello magic 0x%08x", magic)
	}
	version, err := fr.Uint32()
	if err != nil {
		return hello{}, err
	}
	if version != meshVersion {
		return hello{}, fmt.Errorf("transport: peer speaks mesh version %d, want %d", version, meshVersion)
	}
	id, err := fr.Uint32()
	if err != nil {
		return hello{}, err
	}
	pop, err := fr.Uint32()
	if err != nil {
		return hello{}, err
	}
	fp, err := fr.Bytes()
	if err != nil {
		return hello{}, err
	}
	if len(fp) != 8 {
		return hello{}, fmt.Errorf("transport: fingerprint field %d bytes, want 8", len(fp))
	}
	if err := fr.Done(); err != nil {
		return hello{}, err
	}
	return hello{
		ID:          int(id),
		Population:  int(pop),
		Fingerprint: binary.BigEndian.Uint64(fp),
	}, nil
}

func marshalWelcome(id int) []byte {
	return wire.AppendUint32([]byte{mtWelcome}, uint32(id))
}

func parseWelcome(body []byte) (int, error) {
	fr := wire.NewFieldReader(body)
	id, err := fr.Uint32()
	if err != nil {
		return 0, err
	}
	if err := fr.Done(); err != nil {
		return 0, err
	}
	return int(id), nil
}

func marshalReject(reason string) []byte {
	return wire.AppendBytes([]byte{mtReject}, []byte(reason))
}

func parseReject(body []byte) (string, error) {
	fr := wire.NewFieldReader(body)
	reason, err := fr.Bytes()
	if err != nil {
		return "", err
	}
	if err := fr.Done(); err != nil {
		return "", err
	}
	return string(reason), nil
}

func marshalTick(epoch int, done bool) []byte {
	buf := wire.AppendUint32([]byte{mtTick}, uint32(epoch))
	d := byte(0)
	if done {
		d = 1
	}
	return append(buf, d)
}

func parseTick(body []byte) (epoch int, done bool, err error) {
	if len(body) < 1 {
		return 0, false, errors.New("transport: truncated tick")
	}
	fr := wire.NewFieldReader(body[:len(body)-1])
	e, err := fr.Uint32()
	if err != nil {
		return 0, false, err
	}
	if err := fr.Done(); err != nil {
		return 0, false, err
	}
	switch body[len(body)-1] {
	case 0:
		return int(e), false, nil
	case 1:
		return int(e), true, nil
	default:
		return 0, false, fmt.Errorf("transport: bad tick done flag 0x%02x", body[len(body)-1])
	}
}

func marshalData(epoch int, payload []byte) []byte {
	buf := wire.AppendUint32([]byte{mtData}, uint32(epoch))
	return wire.AppendBytes(buf, payload)
}

func parseData(body []byte) (epoch int, payload []byte, err error) {
	fr := wire.NewFieldReader(body)
	e, err := fr.Uint32()
	if err != nil {
		return 0, nil, err
	}
	payload, err = fr.Bytes()
	if err != nil {
		return 0, nil, err
	}
	if err := fr.Done(); err != nil {
		return 0, nil, err
	}
	return int(e), payload, nil
}

func marshalBye() []byte { return []byte{mtBye} }

// marshalKey wraps one dkg wire artifact (deal, response or
// justification — themselves fuzz-hardened encodings) in a
// round-tagged ceremony frame.
func marshalKey(round int, payload []byte) []byte {
	buf := wire.AppendUint32([]byte{mtKey}, uint32(round))
	return wire.AppendBytes(buf, payload)
}

// resume is the reconnect handshake: after a link drop, the dialing
// side re-identifies itself (same magic/version/fingerprint checks as
// hello) and announces the highest frame sequence number it has seen
// from the peer, so the peer can retransmit exactly the frames that
// were lost in flight. LastSeq is 0 when nothing has been received.
type resume struct {
	ID          int
	Population  int
	Fingerprint uint64
	LastSeq     uint64
}

func marshalResume(r resume) []byte {
	buf := []byte{mtResume}
	buf = wire.AppendUint32(buf, helloMagic)
	buf = wire.AppendUint32(buf, meshVersion)
	buf = wire.AppendUint32(buf, uint32(r.ID))
	buf = wire.AppendUint32(buf, uint32(r.Population))
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], r.Fingerprint)
	buf = wire.AppendBytes(buf, u[:])
	binary.BigEndian.PutUint64(u[:], r.LastSeq)
	return wire.AppendBytes(buf, u[:])
}

func parseResume(body []byte) (resume, error) {
	fr := wire.NewFieldReader(body)
	magic, err := fr.Uint32()
	if err != nil {
		return resume{}, err
	}
	if magic != helloMagic {
		return resume{}, fmt.Errorf("transport: bad resume magic 0x%08x", magic)
	}
	version, err := fr.Uint32()
	if err != nil {
		return resume{}, err
	}
	if version != meshVersion {
		return resume{}, fmt.Errorf("transport: peer speaks mesh version %d, want %d", version, meshVersion)
	}
	id, err := fr.Uint32()
	if err != nil {
		return resume{}, err
	}
	pop, err := fr.Uint32()
	if err != nil {
		return resume{}, err
	}
	fp, err := fr.Bytes()
	if err != nil {
		return resume{}, err
	}
	if len(fp) != 8 {
		return resume{}, fmt.Errorf("transport: fingerprint field %d bytes, want 8", len(fp))
	}
	seq, err := fr.Bytes()
	if err != nil {
		return resume{}, err
	}
	if len(seq) != 8 {
		return resume{}, fmt.Errorf("transport: resume seq field %d bytes, want 8", len(seq))
	}
	if err := fr.Done(); err != nil {
		return resume{}, err
	}
	return resume{
		ID:          int(id),
		Population:  int(pop),
		Fingerprint: binary.BigEndian.Uint64(fp),
		LastSeq:     binary.BigEndian.Uint64(seq),
	}, nil
}

// marshalResumeOK acknowledges a resume: the acceptor identifies
// itself and announces its own lastSeqSeen so both sides retransmit.
func marshalResumeOK(id int, lastSeq uint64) []byte {
	buf := wire.AppendUint32([]byte{mtResumeOK}, uint32(id))
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], lastSeq)
	return wire.AppendBytes(buf, u[:])
}

func parseResumeOK(body []byte) (id int, lastSeq uint64, err error) {
	fr := wire.NewFieldReader(body)
	i, err := fr.Uint32()
	if err != nil {
		return 0, 0, err
	}
	seq, err := fr.Bytes()
	if err != nil {
		return 0, 0, err
	}
	if len(seq) != 8 {
		return 0, 0, fmt.Errorf("transport: resume-ok seq field %d bytes, want 8", len(seq))
	}
	if err := fr.Done(); err != nil {
		return 0, 0, err
	}
	return int(i), binary.BigEndian.Uint64(seq), nil
}

func parseKey(body []byte) (round int, payload []byte, err error) {
	fr := wire.NewFieldReader(body)
	r, err := fr.Uint32()
	if err != nil {
		return 0, nil, err
	}
	if r < keyRoundDeal || r > keyRoundJustification {
		return 0, nil, fmt.Errorf("transport: unknown key-ceremony round %d", r)
	}
	payload, err = fr.Bytes()
	if err != nil {
		return 0, nil, err
	}
	if err := fr.Done(); err != nil {
		return 0, nil, err
	}
	return int(r), payload, nil
}
