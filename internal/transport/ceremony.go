package transport

import (
	"fmt"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/crypto/damgardjurik"
	"chiaroscuro/internal/crypto/dkg"
)

// ceremony.go runs the distributed key ceremony over the freshly formed
// mesh: each daemon drives one dkg.Node state machine through the three
// broadcast rounds (deal, response, justification), exchanging the dkg
// package's wire artifacts inside round-tagged mtKey frames, and walks
// away holding only its own key share (core.DJMaterialFromResult). The
// decryption exponent never exists in any single process.
//
// The networked path is the fault-free one: a disqualification verdict
// fails the run instead of restarting it (the scripted-byzantine
// restart loop lives in core.RunDJKeyCeremony, exercised by the
// in-process engines). Coefficient randomness comes from crypto/rand —
// decryptions are exact, so key provenance never reaches the disclosed
// histories, which is what keeps daemon runs bit-identical to the
// sequential reference regardless of the entropy behind the shares.

// runCeremony executes the fresh DKG among the whole population and
// returns this process's sparse key material. Peers progress at their
// own pace: artifacts from rounds we have not reached yet are parked in
// keyPending, and epoch-0 traffic from peers that already finished the
// ceremony is parked in n.backlog for awaitBarrier to replay.
func (n *node) runCeremony(population int, params core.Params) (*core.DJKeyMaterial, error) {
	p := params.Defaulted(population)
	prime1, prime2, err := damgardjurik.FixturePrimes(p.ModulusBits)
	if err != nil {
		return nil, err
	}
	// Every process derives the same additive genesis split from the
	// shared run configuration and deals its own piece.
	pieces, pk, err := dkg.GenesisPieces(prime1, prime2, p.Degree, population, p.Seed)
	if err != nil {
		return nil, err
	}
	dealers := make([]int, population)
	for i := range dealers {
		dealers[i] = i + 1
	}
	dn, err := dkg.NewNode(dkg.Config{
		PK:          pk,
		Parties:     population,
		Threshold:   p.DecryptThreshold,
		Index:       n.cfg.ID + 1,
		Dealers:     dealers,
		DealerIndex: n.cfg.ID + 1,
		Secret:      pieces[n.cfg.ID],
	})
	if err != nil {
		return nil, err
	}

	// Round 1 — deals travel point to point: each receiver gets its own
	// polynomial evaluation. The self-deal takes the same HandleDeal
	// validation path the remote ones do.
	for j, d := range dn.Deals() {
		if j == n.cfg.ID {
			if err := dn.HandleDeal(d); err != nil {
				return nil, err
			}
			continue
		}
		buf, err := dkg.MarshalDeal(d)
		if err != nil {
			return nil, err
		}
		if err := n.links[j].send(0, marshalKey(keyRoundDeal, buf)); err != nil {
			return nil, fmt.Errorf("transport: deal to peer %d: %w", j, err)
		}
	}
	if err := n.collectKeyRound(keyRoundDeal, population-1, func(payload []byte) error {
		d, err := dkg.UnmarshalDeal(payload)
		if err != nil {
			return err
		}
		return dn.HandleDeal(d)
	}); err != nil {
		return nil, err
	}

	// Round 2 — broadcast verdicts; Response() records our own.
	if err := n.broadcastKey(keyRoundResponse, func() ([]byte, error) {
		return dkg.MarshalResponse(dn.Response())
	}); err != nil {
		return nil, err
	}
	if err := n.collectKeyRound(keyRoundResponse, population-1, func(payload []byte) error {
		r, err := dkg.UnmarshalResponse(payload)
		if err != nil {
			return err
		}
		return dn.HandleResponse(r)
	}); err != nil {
		return nil, err
	}

	// Round 3 — broadcast justifications; every node sends one (empty
	// unless accused) so the phase is one frame per peer.
	if err := n.broadcastKey(keyRoundJustification, func() ([]byte, error) {
		just, err := dn.Justification()
		if err != nil {
			return nil, err
		}
		if err := dn.HandleJustification(just); err != nil {
			return nil, err
		}
		return dkg.MarshalJustification(just)
	}); err != nil {
		return nil, err
	}
	if err := n.collectKeyRound(keyRoundJustification, population-1, func(payload []byte) error {
		j, err := dkg.UnmarshalJustification(payload)
		if err != nil {
			return err
		}
		return dn.HandleJustification(j)
	}); err != nil {
		return nil, err
	}

	res, err := dn.Finish()
	if err != nil {
		return nil, fmt.Errorf("transport: key ceremony: %w", err)
	}
	n.cfg.logf("node %d holds key share %d (qualified dealers: %v)", n.cfg.ID, n.cfg.ID+1, res.Qualified)
	return core.DJMaterialFromResult(res)
}

// broadcastKey marshals one ceremony artifact and writes it to every
// peer inside a round-tagged key frame.
func (n *node) broadcastKey(round int, marshal func() ([]byte, error)) error {
	buf, err := marshal()
	if err != nil {
		return err
	}
	frame := marshalKey(round, buf)
	for id, l := range n.links {
		if l == nil {
			continue
		}
		if err := l.send(0, frame); err != nil {
			return fmt.Errorf("transport: key-ceremony round %d to peer %d: %w", round, id, err)
		}
	}
	return nil
}

// collectKeyRound gathers `want` artifacts of the given ceremony round:
// parked payloads first, then the shared inbox. Frames from later
// rounds are parked for their own collection pass; epoch traffic from
// peers already past the ceremony goes to the backlog (preserving
// per-sender FIFO order for awaitBarrier); a replayed earlier round or
// an orderly leave fails the ceremony.
func (n *node) collectKeyRound(round, want int, handle func([]byte) error) error {
	for _, payload := range n.keyPending[round] {
		if err := handle(payload); err != nil {
			return fmt.Errorf("transport: key-ceremony round %d: %w", round, err)
		}
		want--
	}
	delete(n.keyPending, round)
	timeout := time.NewTimer(n.cfg.EpochTimeout)
	defer timeout.Stop()
	for want > 0 {
		var m inMsg
		select {
		case m = <-n.in:
			if m.seq > 0 {
				n.procSeq[m.from] = m.seq
			}
		case <-timeout.C:
			return fmt.Errorf("transport: key-ceremony round %d timed out after %v (%d artifacts missing)", round, n.cfg.EpochTimeout, want)
		}
		if m.err != nil {
			return fmt.Errorf("transport: peer %d connection failed during key ceremony: %w", m.from, m.err)
		}
		switch m.kind {
		case mtKey:
			switch {
			case m.epoch == round: // epoch slot carries the round tag
				if err := handle(m.payload); err != nil {
					return fmt.Errorf("transport: peer %d key-ceremony round %d: %w", m.from, round, err)
				}
				want--
			case m.epoch > round:
				n.keyPending[m.epoch] = append(n.keyPending[m.epoch], m.payload)
			default:
				return fmt.Errorf("transport: peer %d replayed key-ceremony round %d", m.from, m.epoch)
			}
		case mtTick, mtData:
			n.backlog = append(n.backlog, m)
		case mtBye:
			return fmt.Errorf("transport: peer %d left during the key ceremony", m.from)
		}
	}
	return nil
}
