package conformance

import (
	"os"
	"testing"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/transport"
)

// daemonEnv re-execs this test binary as a chiaroscurod daemon: when
// the variable is set, TestMain diverts into transport.DaemonMain
// before the testing framework starts. Spawning daemons from the test
// binary itself (instead of `go build`-ing cmd/chiaroscurod first)
// keeps the daemons under the same -race instrumentation as the test.
const daemonEnv = "CHIAROSCURO_DAEMON"

func TestMain(m *testing.M) {
	if os.Getenv(daemonEnv) == "1" {
		os.Exit(transport.DaemonMain(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func assertConformance(t *testing.T, spec Spec, got, want [][]core.IterationResult) {
	t.Helper()
	if len(got) != spec.N {
		t.Fatalf("mesh produced %d histories, want %d", len(got), spec.N)
	}
	for id := range got {
		if err := EqualHistories(got[id], want[id]); err != nil {
			t.Errorf("participant %d trajectory diverges from sequential reference: %v", id, err)
		}
	}
}

// TestLoopbackConformanceK5 is the headline check: five mesh members
// cluster over loopback TCP and every one of them must disclose the
// bit-identical trajectory the sequential engine computes at the same
// seed. Under -short the mesh runs in-process (goroutine per node,
// real listeners); otherwise each member is a separate re-execed
// daemon process. CHIAROSCURO_LOG_DIR, when set, receives the daemon
// logs (the CI failure artifact).
func TestLoopbackConformanceK5(t *testing.T) {
	spec := Spec{
		N:            5,
		Dataset:      "cer",
		Seed:         77,
		K:            3,
		Iterations:   2,
		EpochTimeout: 60 * time.Second,
	}
	want, err := spec.Reference()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if len(want) != spec.N {
		t.Fatalf("reference produced %d histories, want %d", len(want), spec.N)
	}
	for i, h := range want {
		if len(h) == 0 {
			t.Fatalf("reference participant %d disclosed no iterations", i)
		}
	}

	if testing.Short() {
		got, err := RunInProcess(spec, t.TempDir())
		if err != nil {
			t.Fatalf("in-process mesh: %v", err)
		}
		assertConformance(t, spec, got, want)
		return
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("locating test binary: %v", err)
	}
	logDir := os.Getenv("CHIAROSCURO_LOG_DIR")
	if logDir == "" {
		logDir = t.TempDir()
	}
	got, err := RunProcesses(spec, exe, []string{daemonEnv + "=1"}, t.TempDir(), logDir)
	if err != nil {
		t.Fatalf("multi-process mesh: %v", err)
	}
	assertConformance(t, spec, got, want)
}

// TestLoopbackConformanceDJK5 is the threshold-crypto counterpart of
// the headline check: five mesh members form the mesh KEYLESS, run the
// distributed key ceremony over loopback TCP — each process ends up
// holding only its own Damgård–Jurik key share — and then cluster under
// homomorphic encryption. Every disclosed trajectory must still be
// bit-identical to the sequential reference (whose ceremony runs
// in-process): decryptions are exact, so neither the key's provenance
// nor the ceremony's coefficient entropy may reach the plaintexts.
func TestLoopbackConformanceDJK5(t *testing.T) {
	spec := Spec{
		N:            5,
		Dataset:      "cer",
		Seed:         47,
		K:            2,
		Iterations:   2,
		EpochTimeout: 120 * time.Second,
		Backend:      "dj",
		ModulusBits:  128,
	}
	want, err := spec.Reference()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if len(want) != spec.N {
		t.Fatalf("reference produced %d histories, want %d", len(want), spec.N)
	}

	if testing.Short() {
		got, err := RunInProcess(spec, t.TempDir())
		if err != nil {
			t.Fatalf("in-process mesh: %v", err)
		}
		assertConformance(t, spec, got, want)
		return
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("locating test binary: %v", err)
	}
	logDir := os.Getenv("CHIAROSCURO_LOG_DIR")
	if logDir == "" {
		logDir = t.TempDir()
	}
	got, err := RunProcesses(spec, exe, []string{daemonEnv + "=1"}, t.TempDir(), logDir)
	if err != nil {
		t.Fatalf("multi-process mesh: %v", err)
	}
	assertConformance(t, spec, got, want)
}

// TestInProcessMeshMatchesReference exercises the in-process mesh even
// outside -short, at a different seed, population and dataset, so the
// plain `go test ./...` tier always covers the transport end to end.
func TestInProcessMeshMatchesReference(t *testing.T) {
	spec := Spec{
		N:            4,
		Dataset:      "tumor",
		Seed:         1234,
		K:            2,
		Iterations:   2,
		EpochTimeout: 60 * time.Second,
	}
	want, err := spec.Reference()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	got, err := RunInProcess(spec, t.TempDir())
	if err != nil {
		t.Fatalf("in-process mesh: %v", err)
	}
	assertConformance(t, spec, got, want)
}
