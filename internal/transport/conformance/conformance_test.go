package conformance

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/transport"
)

// daemonEnv re-execs this test binary as a chiaroscurod daemon: when
// the variable is set, TestMain diverts into transport.DaemonMain
// before the testing framework starts. Spawning daemons from the test
// binary itself (instead of `go build`-ing cmd/chiaroscurod first)
// keeps the daemons under the same -race instrumentation as the test.
const daemonEnv = "CHIAROSCURO_DAEMON"

func TestMain(m *testing.M) {
	if os.Getenv(daemonEnv) == "1" {
		os.Exit(transport.DaemonMain(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func assertConformance(t *testing.T, spec Spec, got, want [][]core.IterationResult) {
	t.Helper()
	if len(got) != spec.N {
		t.Fatalf("mesh produced %d histories, want %d", len(got), spec.N)
	}
	for id := range got {
		if err := EqualHistories(got[id], want[id]); err != nil {
			t.Errorf("participant %d trajectory diverges from sequential reference: %v", id, err)
		}
	}
}

// TestLoopbackConformanceK5 is the headline check: five mesh members
// cluster over loopback TCP and every one of them must disclose the
// bit-identical trajectory the sequential engine computes at the same
// seed. Under -short the mesh runs in-process (goroutine per node,
// real listeners); otherwise each member is a separate re-execed
// daemon process. CHIAROSCURO_LOG_DIR, when set, receives the daemon
// logs (the CI failure artifact).
func TestLoopbackConformanceK5(t *testing.T) {
	spec := Spec{
		N:            5,
		Dataset:      "cer",
		Seed:         77,
		K:            3,
		Iterations:   2,
		EpochTimeout: 60 * time.Second,
	}
	want, err := spec.Reference()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if len(want) != spec.N {
		t.Fatalf("reference produced %d histories, want %d", len(want), spec.N)
	}
	for i, h := range want {
		if len(h) == 0 {
			t.Fatalf("reference participant %d disclosed no iterations", i)
		}
	}

	if testing.Short() {
		got, err := RunInProcess(spec, t.TempDir())
		if err != nil {
			t.Fatalf("in-process mesh: %v", err)
		}
		assertConformance(t, spec, got, want)
		return
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("locating test binary: %v", err)
	}
	logDir := os.Getenv("CHIAROSCURO_LOG_DIR")
	if logDir == "" {
		logDir = t.TempDir()
	}
	got, err := RunProcesses(spec, exe, []string{daemonEnv + "=1"}, t.TempDir(), logDir)
	if err != nil {
		t.Fatalf("multi-process mesh: %v", err)
	}
	assertConformance(t, spec, got, want)
}

// TestLoopbackConformanceDJK5 is the threshold-crypto counterpart of
// the headline check: five mesh members form the mesh KEYLESS, run the
// distributed key ceremony over loopback TCP — each process ends up
// holding only its own Damgård–Jurik key share — and then cluster under
// homomorphic encryption. Every disclosed trajectory must still be
// bit-identical to the sequential reference (whose ceremony runs
// in-process): decryptions are exact, so neither the key's provenance
// nor the ceremony's coefficient entropy may reach the plaintexts.
func TestLoopbackConformanceDJK5(t *testing.T) {
	spec := Spec{
		N:            5,
		Dataset:      "cer",
		Seed:         47,
		K:            2,
		Iterations:   2,
		EpochTimeout: 120 * time.Second,
		Backend:      "dj",
		ModulusBits:  128,
	}
	want, err := spec.Reference()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if len(want) != spec.N {
		t.Fatalf("reference produced %d histories, want %d", len(want), spec.N)
	}

	if testing.Short() {
		got, err := RunInProcess(spec, t.TempDir())
		if err != nil {
			t.Fatalf("in-process mesh: %v", err)
		}
		assertConformance(t, spec, got, want)
		return
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("locating test binary: %v", err)
	}
	logDir := os.Getenv("CHIAROSCURO_LOG_DIR")
	if logDir == "" {
		logDir = t.TempDir()
	}
	got, err := RunProcesses(spec, exe, []string{daemonEnv + "=1"}, t.TempDir(), logDir)
	if err != nil {
		t.Fatalf("multi-process mesh: %v", err)
	}
	assertConformance(t, spec, got, want)
}

// stateDir returns the run's scratch directory: CHIAROSCURO_STATE_DIR
// when set (the CI failure artifact — checkpoints, rendezvous files and
// history files survive the test), a TempDir otherwise.
func stateDir(t *testing.T) string {
	if dir := os.Getenv("CHIAROSCURO_STATE_DIR"); dir != "" {
		sub := filepath.Join(dir, t.Name())
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		return sub
	}
	return t.TempDir()
}

// TestLoopbackConformanceChaosK5 runs the five-member mesh with
// deterministic network faults injected under every daemon's sockets —
// connection resets mid-run, partial writes on every frame, read and
// write stalls — and still demands bit-identical trajectories. The
// supervision layer (sequence numbers, retransmit rings, backoff
// redial, resume handshake) must absorb every fault: chaos may cost
// wall-clock, never a single disclosed bit.
func TestLoopbackConformanceChaosK5(t *testing.T) {
	spec := Spec{
		N:            5,
		Dataset:      "cer",
		Seed:         31,
		K:            3,
		Iterations:   2,
		EpochTimeout: 60 * time.Second,
		Grace:        30 * time.Second,
		Chaos:        "reset@25:2,partial,stall@30:50ms,rstall@35:50ms",
		ChaosSeed:    1601,
	}
	want, err := spec.Reference()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	if testing.Short() {
		got, err := RunInProcess(spec, t.TempDir())
		if err != nil {
			t.Fatalf("in-process chaos mesh: %v", err)
		}
		assertConformance(t, spec, got, want)
		return
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("locating test binary: %v", err)
	}
	logDir := os.Getenv("CHIAROSCURO_LOG_DIR")
	if logDir == "" {
		logDir = t.TempDir()
	}
	got, err := RunProcesses(spec, exe, []string{daemonEnv + "=1"}, stateDir(t), logDir)
	if err != nil {
		t.Fatalf("multi-process chaos mesh: %v", err)
	}
	assertConformance(t, spec, got, want)
}

// TestLoopbackConformanceKillRestartK5 is the crash-recovery headline
// check: five daemon processes checkpoint every epoch; one of them is
// SIGKILLed the moment its first checkpoint lands (in-flight frames and
// kernel socket buffers destroyed with it) and restarted with -resume.
// The survivors park on their grace windows, the resume handshake
// replays what the crash lost, and every disclosed history — including
// the restarted daemon's — must be bit-identical (Float64bits) to the
// sequential reference.
func TestLoopbackConformanceKillRestartK5(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-restart requires process isolation")
	}
	spec := Spec{
		N:               5,
		Dataset:         "cer",
		Seed:            53,
		K:               3,
		Iterations:      2,
		EpochTimeout:    60 * time.Second,
		Grace:           60 * time.Second,
		CheckpointEvery: 1,
	}
	want, err := spec.Reference()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("locating test binary: %v", err)
	}
	logDir := os.Getenv("CHIAROSCURO_LOG_DIR")
	if logDir == "" {
		logDir = t.TempDir()
	}
	got, err := RunProcessesKillRestart(spec, exe, []string{daemonEnv + "=1"}, stateDir(t), logDir, 2)
	if err != nil {
		t.Fatalf("kill-restart mesh: %v", err)
	}
	assertConformance(t, spec, got, want)
}

// TestInProcessMeshMatchesReference exercises the in-process mesh even
// outside -short, at a different seed, population and dataset, so the
// plain `go test ./...` tier always covers the transport end to end.
func TestInProcessMeshMatchesReference(t *testing.T) {
	spec := Spec{
		N:            4,
		Dataset:      "tumor",
		Seed:         1234,
		K:            2,
		Iterations:   2,
		EpochTimeout: 60 * time.Second,
	}
	want, err := spec.Reference()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	got, err := RunInProcess(spec, t.TempDir())
	if err != nil {
		t.Fatalf("in-process mesh: %v", err)
	}
	assertConformance(t, spec, got, want)
}
