// Package conformance checks the networked daemon against the
// sequential reference engine: K daemon processes (or in-process mesh
// members under -short) run a small clustering over loopback TCP, and
// every participant's disclosed per-iteration history must be
// bit-identical — Float64bits equality, NaN-safe — to the history the
// sequential simulator produces for the same participant at the same
// seed. This is the determinism contract of the transport layer: the
// network moves the protocol without perturbing a single bit of it.
package conformance

import (
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/transport"
)

// Spec pins one conformance scenario: every daemon and the reference
// run are built from exactly these values.
type Spec struct {
	N            int    // population (mesh size)
	Dataset      string // synthetic dataset name
	Seed         int64
	K            int
	Iterations   int
	EpochTimeout time.Duration
	Backend      string // "" or "plain" (accounted), or "dj" (threshold Damgård–Jurik)
	ModulusBits  int    // dj modulus size; 0 = backend default
}

// Params returns the run parameters every mesh member and the
// reference engine must share. The dj backend runs DKG-keyed: daemons
// hold the key ceremony over the mesh, while the sequential reference
// drives the identical ceremony in-process — decryptions are exact, so
// both key paths disclose the same bits.
func (s Spec) Params() core.Params {
	p := core.Params{
		K:          s.K,
		Epsilon:    1.0,
		Iterations: s.Iterations,
		Seed:       s.Seed,
		Backend:    core.BackendPlainAccounted,
	}
	if s.Backend == "dj" {
		p.Backend = core.BackendDamgardJurik
		p.DKG = true
		p.ModulusBits = s.ModulusBits
	}
	return p
}

// Data regenerates the population's series exactly as each daemon does.
func (s Spec) Data() ([][]float64, error) {
	return transport.SyntheticSeries(s.Dataset, s.N, s.Seed)
}

// Reference runs the sequential engine and returns every participant's
// history — the trajectories the mesh must reproduce.
func (s Spec) Reference() ([][]core.IterationResult, error) {
	data, err := s.Data()
	if err != nil {
		return nil, err
	}
	_, histories, err := core.RunSequentialHistories(data, s.Params())
	return histories, err
}

// DaemonArgs builds the chiaroscurod argument list for one mesh member,
// with addresses discovered through the shared rendezvous directory and
// the history written to outFile.
func (s Spec) DaemonArgs(id int, addrDir, outFile string) []string {
	args := []string{
		"-id", fmt.Sprint(id),
		"-n", fmt.Sprint(s.N),
		"-addr-dir", addrDir,
		"-epoch-timeout", s.EpochTimeout.String(),
		"-dataset", s.Dataset,
		"-seed", fmt.Sprint(s.Seed),
		"-k", fmt.Sprint(s.K),
		"-iterations", fmt.Sprint(s.Iterations),
		"-out", outFile,
		"-v",
	}
	if s.Backend != "" {
		args = append(args, "-backend", s.Backend)
	}
	if s.ModulusBits != 0 {
		args = append(args, "-modulus-bits", fmt.Sprint(s.ModulusBits))
	}
	return args
}

// RunInProcess runs the whole mesh inside the calling process: N
// goroutines, each a full transport node with its own TCP listener on
// loopback. Same wire traffic as the multi-process mode, minus the
// process isolation — the -short configuration.
func RunInProcess(s Spec, dir string) ([][]core.IterationResult, error) {
	data, err := s.Data()
	if err != nil {
		return nil, err
	}
	histories := make([][]core.IterationResult, s.N)
	errs := make([]error, s.N)
	var wg sync.WaitGroup
	for id := 0; id < s.N; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cfg := transport.Config{
				ID:           id,
				Population:   s.N,
				Listen:       "127.0.0.1:0",
				AddrDir:      dir,
				EpochTimeout: s.EpochTimeout,
			}
			histories[id], errs[id] = transport.Run(cfg, data, s.Params())
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", id, err)
		}
	}
	return histories, nil
}

// RunProcesses runs the mesh as N separate daemon processes launched
// from the given executable (the re-execed test binary, or a built
// chiaroscurod), with per-daemon logs written under logDir. It returns
// every daemon's disclosed history.
func RunProcesses(s Spec, exe string, extraEnv []string, workDir, logDir string) ([][]core.IterationResult, error) {
	addrDir := filepath.Join(workDir, "rendezvous")
	if err := os.MkdirAll(addrDir, 0o755); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(logDir, 0o755); err != nil {
		return nil, err
	}
	outFiles := make([]string, s.N)
	cmds := make([]*exec.Cmd, s.N)
	logs := make([]*os.File, s.N)
	for id := 0; id < s.N; id++ {
		outFiles[id] = filepath.Join(workDir, fmt.Sprintf("history-%d.gob", id))
		logFile, err := os.Create(filepath.Join(logDir, fmt.Sprintf("daemon-%d.log", id)))
		if err != nil {
			return nil, err
		}
		logs[id] = logFile
		cmd := exec.Command(exe, s.DaemonArgs(id, addrDir, outFiles[id])...)
		cmd.Env = append(os.Environ(), extraEnv...)
		cmd.Stdout = logFile
		cmd.Stderr = logFile
		if err := cmd.Start(); err != nil {
			logFile.Close()
			return nil, fmt.Errorf("start daemon %d: %w", id, err)
		}
		cmds[id] = cmd
	}
	var firstErr error
	for id, cmd := range cmds {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("daemon %d: %w (see %s)", id, err, filepath.Join(logDir, fmt.Sprintf("daemon-%d.log", id)))
		}
		logs[id].Close()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	histories := make([][]core.IterationResult, s.N)
	for id := range histories {
		h, err := transport.ReadHistory(outFiles[id])
		if err != nil {
			return nil, fmt.Errorf("daemon %d history: %w", id, err)
		}
		histories[id] = h
	}
	return histories, nil
}

// EqualHistories demands bit-identical disclosed trajectories: every
// field of every iteration, floats compared by their IEEE-754 bit
// patterns (so a NaN matches a NaN, and no epsilon hides a divergence).
func EqualHistories(got, want []core.IterationResult) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d iterations, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Iteration != w.Iteration {
			return fmt.Errorf("iter %d: Iteration %d != %d", i, g.Iteration, w.Iteration)
		}
		if math.Float64bits(g.Epsilon) != math.Float64bits(w.Epsilon) {
			return fmt.Errorf("iter %d: Epsilon bits differ", i)
		}
		if err := equalMatrix(g.PerturbedCentroids, w.PerturbedCentroids); err != nil {
			return fmt.Errorf("iter %d: PerturbedCentroids: %w", i, err)
		}
		if err := equalVector(g.PerturbedCounts, w.PerturbedCounts); err != nil {
			return fmt.Errorf("iter %d: PerturbedCounts: %w", i, err)
		}
		if math.Float64bits(g.PerturbedInertia) != math.Float64bits(w.PerturbedInertia) {
			return fmt.Errorf("iter %d: PerturbedInertia bits differ (%v vs %v)", i, g.PerturbedInertia, w.PerturbedInertia)
		}
		if g.Assignment != w.Assignment {
			return fmt.Errorf("iter %d: Assignment %d != %d", i, g.Assignment, w.Assignment)
		}
		if math.Float64bits(g.Displacement) != math.Float64bits(w.Displacement) {
			return fmt.Errorf("iter %d: Displacement bits differ (%v vs %v)", i, g.Displacement, w.Displacement)
		}
		if g.DecryptFailed != w.DecryptFailed {
			return fmt.Errorf("iter %d: DecryptFailed %t != %t", i, g.DecryptFailed, w.DecryptFailed)
		}
		if g.CompletedAtCycle != w.CompletedAtCycle {
			return fmt.Errorf("iter %d: CompletedAtCycle %d != %d", i, g.CompletedAtCycle, w.CompletedAtCycle)
		}
	}
	return nil
}

func equalVector(got, want []float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("len %d != %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return fmt.Errorf("[%d] bits differ: %v vs %v", i, got[i], want[i])
		}
	}
	return nil
}

func equalMatrix(got, want [][]float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("rows %d != %d", len(got), len(want))
	}
	for i := range want {
		if err := equalVector(got[i], want[i]); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	return nil
}
