// Package conformance checks the networked daemon against the
// sequential reference engine: K daemon processes (or in-process mesh
// members under -short) run a small clustering over loopback TCP, and
// every participant's disclosed per-iteration history must be
// bit-identical — Float64bits equality, NaN-safe — to the history the
// sequential simulator produces for the same participant at the same
// seed. This is the determinism contract of the transport layer: the
// network moves the protocol without perturbing a single bit of it.
package conformance

import (
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/transport"
	"chiaroscuro/internal/transport/netchaos"
)

// Spec pins one conformance scenario: every daemon and the reference
// run are built from exactly these values.
type Spec struct {
	N            int    // population (mesh size)
	Dataset      string // synthetic dataset name
	Seed         int64
	K            int
	Iterations   int
	EpochTimeout time.Duration
	Backend      string // "" or "plain" (accounted), or "dj" (threshold Damgård–Jurik)
	ModulusBits  int    // dj modulus size; 0 = backend default

	// Robustness knobs. Grace tolerates link outages; CheckpointEvery > 0
	// enables epoch checkpoints (shared directory, one file per daemon);
	// Chaos is a netchaos scenario injected under every daemon's sockets,
	// seeded per daemon from ChaosSeed so the processes don't fail in
	// lockstep. None of these may change a single disclosed bit.
	Grace           time.Duration
	CheckpointEvery int
	Chaos           string
	ChaosSeed       int64
}

// Params returns the run parameters every mesh member and the
// reference engine must share. The dj backend runs DKG-keyed: daemons
// hold the key ceremony over the mesh, while the sequential reference
// drives the identical ceremony in-process — decryptions are exact, so
// both key paths disclose the same bits.
func (s Spec) Params() core.Params {
	p := core.Params{
		K:          s.K,
		Epsilon:    1.0,
		Iterations: s.Iterations,
		Seed:       s.Seed,
		Backend:    core.BackendPlainAccounted,
	}
	if s.Backend == "dj" {
		p.Backend = core.BackendDamgardJurik
		p.DKG = true
		p.ModulusBits = s.ModulusBits
	}
	return p
}

// Data regenerates the population's series exactly as each daemon does.
func (s Spec) Data() ([][]float64, error) {
	return transport.SyntheticSeries(s.Dataset, s.N, s.Seed)
}

// Reference runs the sequential engine and returns every participant's
// history — the trajectories the mesh must reproduce.
func (s Spec) Reference() ([][]core.IterationResult, error) {
	data, err := s.Data()
	if err != nil {
		return nil, err
	}
	_, histories, err := core.RunSequentialHistories(data, s.Params())
	return histories, err
}

// DaemonArgs builds the chiaroscurod argument list for one mesh member,
// with addresses discovered through the shared rendezvous directory and
// the history written to outFile. ckptDir may be empty when the spec
// does not checkpoint.
func (s Spec) DaemonArgs(id int, addrDir, ckptDir, outFile string) []string {
	args := []string{
		"-id", fmt.Sprint(id),
		"-n", fmt.Sprint(s.N),
		"-addr-dir", addrDir,
		"-epoch-timeout", s.EpochTimeout.String(),
		"-dataset", s.Dataset,
		"-seed", fmt.Sprint(s.Seed),
		"-k", fmt.Sprint(s.K),
		"-iterations", fmt.Sprint(s.Iterations),
		"-out", outFile,
		"-v",
	}
	if s.Backend != "" {
		args = append(args, "-backend", s.Backend)
	}
	if s.ModulusBits != 0 {
		args = append(args, "-modulus-bits", fmt.Sprint(s.ModulusBits))
	}
	if s.Grace > 0 {
		args = append(args, "-grace", s.Grace.String())
	}
	if s.CheckpointEvery > 0 {
		args = append(args, "-checkpoint-dir", ckptDir, "-checkpoint-every", fmt.Sprint(s.CheckpointEvery))
	}
	if s.Chaos != "" {
		// Per-daemon seed: the same scenario must not trip every process
		// at the identical frame.
		args = append(args, "-chaos", s.Chaos, "-chaos-seed", fmt.Sprint(s.ChaosSeed+int64(id)))
	}
	return args
}

// RunInProcess runs the whole mesh inside the calling process: N
// goroutines, each a full transport node with its own TCP listener on
// loopback. Same wire traffic as the multi-process mode, minus the
// process isolation — the -short configuration.
func RunInProcess(s Spec, dir string) ([][]core.IterationResult, error) {
	data, err := s.Data()
	if err != nil {
		return nil, err
	}
	ckptDir := ""
	if s.CheckpointEvery > 0 {
		ckptDir = filepath.Join(dir, "checkpoints")
		if err := os.MkdirAll(ckptDir, 0o755); err != nil {
			return nil, err
		}
	}
	histories := make([][]core.IterationResult, s.N)
	errs := make([]error, s.N)
	var wg sync.WaitGroup
	for id := 0; id < s.N; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cfg := transport.Config{
				ID:              id,
				Population:      s.N,
				Listen:          "127.0.0.1:0",
				AddrDir:         dir,
				EpochTimeout:    s.EpochTimeout,
				Grace:           s.Grace,
				CheckpointDir:   ckptDir,
				CheckpointEvery: s.CheckpointEvery,
			}
			if s.Chaos != "" {
				// One chaos plan per node, mirroring the per-process
				// plans of the daemon mode (budgets are per node).
				c, err := netchaos.New(s.Chaos, s.ChaosSeed+int64(id))
				if err != nil {
					errs[id] = err
					return
				}
				cfg.Dialer = c.Dial
				cfg.Listener = c.Listen
			}
			histories[id], errs[id] = transport.Run(cfg, data, s.Params())
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", id, err)
		}
	}
	return histories, nil
}

// RunProcesses runs the mesh as N separate daemon processes launched
// from the given executable (the re-execed test binary, or a built
// chiaroscurod), with per-daemon logs written under logDir. It returns
// every daemon's disclosed history.
func RunProcesses(s Spec, exe string, extraEnv []string, workDir, logDir string) ([][]core.IterationResult, error) {
	mesh, err := newProcessMesh(s, exe, extraEnv, workDir, logDir)
	if err != nil {
		return nil, err
	}
	for id := 0; id < s.N; id++ {
		if err := mesh.start(id, fmt.Sprintf("daemon-%d.log", id)); err != nil {
			return nil, err
		}
	}
	var firstErr error
	for id := range mesh.cmds {
		if err := mesh.wait(id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return mesh.histories()
}

// processMesh owns one multi-process conformance run: daemon processes
// re-execed from the test binary, their logs, history files, and the
// shared rendezvous and checkpoint directories.
type processMesh struct {
	spec     Spec
	exe      string
	extraEnv []string
	logDir   string
	addrDir  string
	ckptDir  string
	outFiles []string
	cmds     []*exec.Cmd
	logs     []*os.File
	logNames []string
}

func newProcessMesh(s Spec, exe string, extraEnv []string, workDir, logDir string) (*processMesh, error) {
	m := &processMesh{
		spec:     s,
		exe:      exe,
		extraEnv: extraEnv,
		logDir:   logDir,
		addrDir:  filepath.Join(workDir, "rendezvous"),
		outFiles: make([]string, s.N),
		cmds:     make([]*exec.Cmd, s.N),
		logs:     make([]*os.File, s.N),
		logNames: make([]string, s.N),
	}
	dirs := []string{m.addrDir, logDir}
	if s.CheckpointEvery > 0 {
		m.ckptDir = filepath.Join(workDir, "checkpoints")
		dirs = append(dirs, m.ckptDir)
	}
	for _, d := range dirs {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	for id := 0; id < s.N; id++ {
		m.outFiles[id] = filepath.Join(workDir, fmt.Sprintf("history-%d.gob", id))
	}
	return m, nil
}

// start launches (or relaunches) daemon id, logging to logName.
func (m *processMesh) start(id int, logName string, extraArgs ...string) error {
	logFile, err := os.Create(filepath.Join(m.logDir, logName))
	if err != nil {
		return err
	}
	args := append(m.spec.DaemonArgs(id, m.addrDir, m.ckptDir, m.outFiles[id]), extraArgs...)
	cmd := exec.Command(m.exe, args...)
	cmd.Env = append(os.Environ(), m.extraEnv...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return fmt.Errorf("start daemon %d: %w", id, err)
	}
	m.cmds[id], m.logs[id], m.logNames[id] = cmd, logFile, logName
	return nil
}

// wait reaps daemon id's current process and closes its log.
func (m *processMesh) wait(id int) error {
	err := m.cmds[id].Wait()
	m.logs[id].Close()
	if err != nil {
		return fmt.Errorf("daemon %d: %w (see %s)", id, err, filepath.Join(m.logDir, m.logNames[id]))
	}
	return nil
}

func (m *processMesh) histories() ([][]core.IterationResult, error) {
	histories := make([][]core.IterationResult, m.spec.N)
	for id := range histories {
		h, err := transport.ReadHistory(m.outFiles[id])
		if err != nil {
			return nil, fmt.Errorf("daemon %d history: %w", id, err)
		}
		histories[id] = h
	}
	return histories, nil
}

// RunProcessesKillRestart runs the mesh as processes, SIGKILLs the
// victim daemon the moment its first epoch checkpoint appears (no
// cleanup of any kind — kernel socket buffers and all in-flight frames
// are destroyed), restarts it with -resume, and returns every daemon's
// disclosed history. The spec must enable checkpointing and a grace
// window generous enough to cover the restart.
func RunProcessesKillRestart(s Spec, exe string, extraEnv []string, workDir, logDir string, victim int) ([][]core.IterationResult, error) {
	if s.CheckpointEvery <= 0 {
		return nil, fmt.Errorf("kill-restart requires CheckpointEvery > 0")
	}
	if s.Grace <= 0 {
		return nil, fmt.Errorf("kill-restart requires a grace window")
	}
	mesh, err := newProcessMesh(s, exe, extraEnv, workDir, logDir)
	if err != nil {
		return nil, err
	}
	for id := 0; id < s.N; id++ {
		if err := mesh.start(id, fmt.Sprintf("daemon-%d.log", id)); err != nil {
			return nil, err
		}
	}

	// Kill the victim as soon as it has durable state to resume from.
	// The mesh advances in lockstep, so the run cannot complete before
	// the victim (killed within its first epochs) is back.
	ckptFile := filepath.Join(mesh.ckptDir, fmt.Sprintf("%d.ckpt", victim))
	deadline := time.Now().Add(s.EpochTimeout)
	for {
		if _, err := os.Stat(ckptFile); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("victim %d wrote no checkpoint within %v", victim, s.EpochTimeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := mesh.cmds[victim].Process.Kill(); err != nil {
		return nil, fmt.Errorf("kill victim %d: %w", victim, err)
	}
	mesh.cmds[victim].Wait() // reap; a kill error is expected
	mesh.logs[victim].Close()

	if err := mesh.start(victim, fmt.Sprintf("daemon-%d-restart.log", victim), "-resume"); err != nil {
		return nil, err
	}
	var firstErr error
	for id := range mesh.cmds {
		if err := mesh.wait(id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return mesh.histories()
}

// EqualHistories demands bit-identical disclosed trajectories: every
// field of every iteration, floats compared by their IEEE-754 bit
// patterns (so a NaN matches a NaN, and no epsilon hides a divergence).
func EqualHistories(got, want []core.IterationResult) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d iterations, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Iteration != w.Iteration {
			return fmt.Errorf("iter %d: Iteration %d != %d", i, g.Iteration, w.Iteration)
		}
		if math.Float64bits(g.Epsilon) != math.Float64bits(w.Epsilon) {
			return fmt.Errorf("iter %d: Epsilon bits differ", i)
		}
		if err := equalMatrix(g.PerturbedCentroids, w.PerturbedCentroids); err != nil {
			return fmt.Errorf("iter %d: PerturbedCentroids: %w", i, err)
		}
		if err := equalVector(g.PerturbedCounts, w.PerturbedCounts); err != nil {
			return fmt.Errorf("iter %d: PerturbedCounts: %w", i, err)
		}
		if math.Float64bits(g.PerturbedInertia) != math.Float64bits(w.PerturbedInertia) {
			return fmt.Errorf("iter %d: PerturbedInertia bits differ (%v vs %v)", i, g.PerturbedInertia, w.PerturbedInertia)
		}
		if g.Assignment != w.Assignment {
			return fmt.Errorf("iter %d: Assignment %d != %d", i, g.Assignment, w.Assignment)
		}
		if math.Float64bits(g.Displacement) != math.Float64bits(w.Displacement) {
			return fmt.Errorf("iter %d: Displacement bits differ (%v vs %v)", i, g.Displacement, w.Displacement)
		}
		if g.DecryptFailed != w.DecryptFailed {
			return fmt.Errorf("iter %d: DecryptFailed %t != %t", i, g.DecryptFailed, w.DecryptFailed)
		}
		if g.CompletedAtCycle != w.CompletedAtCycle {
			return fmt.Errorf("iter %d: CompletedAtCycle %d != %d", i, g.CompletedAtCycle, w.CompletedAtCycle)
		}
	}
	return nil
}

func equalVector(got, want []float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("len %d != %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return fmt.Errorf("[%d] bits differ: %v vs %v", i, got[i], want[i])
		}
	}
	return nil
}

func equalMatrix(got, want [][]float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("rows %d != %d", len(got), len(want))
	}
	for i := range want {
		if err := equalVector(got[i], want[i]); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	return nil
}
