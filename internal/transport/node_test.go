package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"chiaroscuro/internal/core"
)

func gobHistory(t *testing.T, h []core.IterationResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRendezvousIgnoresStaleEntries: address files left behind by an
// earlier run (malformed, or well-formed under a different
// configuration fingerprint) must be ignored and overwritten, not
// dialed — the mesh still forms.
func TestRendezvousIgnoresStaleEntries(t *testing.T) {
	dir := t.TempDir()
	// A malformed leftover and a well-formed entry from a different run
	// pointing at a dead port.
	if err := os.WriteFile(filepath.Join(dir, "0.addr"), []byte("not a rendezvous entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "1.addr"), []byte(fmt.Sprintf("%016x %s", uint64(0xDEAD), "127.0.0.1:1")), 0o644); err != nil {
		t.Fatal(err)
	}

	const n = 2
	data, err := SyntheticSeries("cer", n, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{K: 2, Epsilon: 1.0, Iterations: 1, Seed: 3, Backend: core.BackendPlainAccounted}
	_, want, err := core.RunSequentialHistories(data, params)
	if err != nil {
		t.Fatal(err)
	}

	histories := make([][]core.IterationResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cfg := Config{
				ID:           id,
				Population:   n,
				Listen:       "127.0.0.1:0",
				AddrDir:      dir,
				EpochTimeout: 30 * time.Second,
			}
			histories[id], errs[id] = Run(cfg, data, params)
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
	}
	for id := range histories {
		if !bytes.Equal(gobHistory(t, histories[id]), gobHistory(t, want[id])) {
			t.Errorf("node %d history diverges from sequential reference", id)
		}
	}
}

// TestWriteHistoryAtomic is the torn-write regression test: WriteHistory
// must replace a garbage target wholesale, leave no temp residue, and
// produce a file ReadHistory round-trips exactly.
func TestWriteHistoryAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "history.gob")
	// A torn file from a previous crashed writer at the target path.
	if err := os.WriteFile(path, []byte("\x13\xff\x81torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	history := []core.IterationResult{
		{Iteration: 0, Epsilon: 0.5, PerturbedInertia: 1.25, Assignment: 1, CompletedAtCycle: 7},
		{Iteration: 1, Epsilon: 0.25, Assignment: 0, CompletedAtCycle: 19},
	}
	if err := WriteHistory(path, history); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHistory(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(gobHistory(t, got), gobHistory(t, history)) {
		t.Fatal("history did not round-trip")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the history file", len(entries))
	}
}

// TestInterruptResumeInProcess drives the graceful interrupt/resume
// cycle without process machinery: a three-node mesh where one node is
// interrupted the moment the mesh forms (its Interrupt channel is
// already closed), checkpoints, says bye, and is then restarted with
// Resume. The survivors ride out the outage on their grace windows, the
// resume handshake replays what was lost, and every disclosed history —
// including the victim's — must be bit-identical to the sequential
// reference.
func TestInterruptResumeInProcess(t *testing.T) {
	const n = 3
	const victim = 2
	data, err := SyntheticSeries("cer", n, 5)
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{K: 2, Epsilon: 1.0, Iterations: 2, Seed: 5, Backend: core.BackendPlainAccounted}
	_, want, err := core.RunSequentialHistories(data, params)
	if err != nil {
		t.Fatal(err)
	}

	addrDir, ckptDir := t.TempDir(), t.TempDir()
	interrupted := make(chan struct{})
	close(interrupted)

	baseCfg := func(id int) Config {
		return Config{
			ID:           id,
			Population:   n,
			Listen:       "127.0.0.1:0",
			AddrDir:      addrDir,
			EpochTimeout: 30 * time.Second,
			Grace:        30 * time.Second,
		}
	}

	histories := make([][]core.IterationResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		if id == victim {
			continue
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			histories[id], errs[id] = Run(baseCfg(id), data, params)
		}(id)
	}

	vcfg := baseCfg(victim)
	vcfg.CheckpointDir = ckptDir
	vcfg.CheckpointEvery = 1
	vcfg.Interrupt = interrupted
	if _, err := Run(vcfg, data, params); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	if _, err := os.Stat(checkpointPath(vcfg)); err != nil {
		t.Fatalf("no checkpoint after interrupt: %v", err)
	}

	vcfg.Interrupt = nil
	vcfg.Resume = true
	histories[victim], errs[victim] = Run(vcfg, data, params)

	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
	}
	for id := range histories {
		if !bytes.Equal(gobHistory(t, histories[id]), gobHistory(t, want[id])) {
			t.Errorf("node %d history diverges from sequential reference after interrupt/resume", id)
		}
	}
}
