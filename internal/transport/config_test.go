package transport

import (
	"testing"
	"time"
)

// TestTransportConfigErrors pins the exact error text of every
// transport Config validation path, in the same spirit as the root
// package's TestConfigValidationErrors: operators script against these
// messages (launchers grep daemon stderr), so a wording change should
// be a conscious one.
func TestTransportConfigErrors(t *testing.T) {
	valid := func() Config {
		return Config{
			ID:           1,
			Population:   3,
			Listen:       "127.0.0.1:0",
			AddrDir:      "/tmp/mesh",
			EpochTimeout: time.Second,
		}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{
			name:   "population too small",
			mutate: func(c *Config) { c.Population = 1 },
			want:   "transport: population must be at least 2",
		},
		{
			name:   "negative id",
			mutate: func(c *Config) { c.ID = -1 },
			want:   "transport: node id -1 outside population [0, 3)",
		},
		{
			name:   "id at population",
			mutate: func(c *Config) { c.ID = 3 },
			want:   "transport: node id 3 outside population [0, 3)",
		},
		{
			name:   "missing listen address",
			mutate: func(c *Config) { c.Listen = "" },
			want:   "transport: listen address is required",
		},
		{
			name:   "neither peers nor rendezvous dir",
			mutate: func(c *Config) { c.AddrDir = "" },
			want:   "transport: exactly one of peer list and rendezvous dir is required",
		},
		{
			name: "both peers and rendezvous dir",
			mutate: func(c *Config) {
				c.Peers = []string{"a:1", "", "c:3"}
			},
			want: "transport: exactly one of peer list and rendezvous dir is required",
		},
		{
			name: "peer list wrong length",
			mutate: func(c *Config) {
				c.AddrDir = ""
				c.Peers = []string{"a:1", "b:2"}
			},
			want: "transport: peer list has 2 addresses, want one per node (3)",
		},
		{
			name: "empty peer address",
			mutate: func(c *Config) {
				c.AddrDir = ""
				c.Peers = []string{"a:1", "", ""}
			},
			want: "transport: peer 2 has an empty address",
		},
		{
			name:   "zero epoch timeout",
			mutate: func(c *Config) { c.EpochTimeout = 0 },
			want:   "transport: epoch timeout must be positive",
		},
		{
			name:   "negative epoch timeout",
			mutate: func(c *Config) { c.EpochTimeout = -time.Second },
			want:   "transport: epoch timeout must be positive",
		},
		{
			name:   "negative grace",
			mutate: func(c *Config) { c.Grace = -time.Second },
			want:   "transport: grace must not be negative",
		},
		{
			name:   "negative write timeout",
			mutate: func(c *Config) { c.WriteTimeout = -time.Second },
			want:   "transport: write timeout must not be negative",
		},
		{
			name:   "negative checkpoint interval",
			mutate: func(c *Config) { c.CheckpointEvery = -1 },
			want:   "transport: checkpoint interval must not be negative",
		},
		{
			name:   "checkpoint interval without dir",
			mutate: func(c *Config) { c.CheckpointEvery = 2 },
			want:   "transport: checkpoint interval requires a checkpoint dir",
		},
		{
			name:   "resume without dir",
			mutate: func(c *Config) { c.Resume = true },
			want:   "transport: resume requires a checkpoint dir",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted invalid config %+v", cfg)
			}
			if err.Error() != tc.want {
				t.Fatalf("error text:\n got: %s\nwant: %s", err, tc.want)
			}
		})
	}

	// The baseline and the peer-list variant must both validate: the
	// slot at the node's own id is allowed to stay empty.
	cfg := valid()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid rendezvous config rejected: %v", err)
	}
	cfg = valid()
	cfg.AddrDir = ""
	cfg.Peers = []string{"a:1", "", "c:3"}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid peer-list config rejected: %v", err)
	}

	// A fully crash-tolerant configuration must validate too.
	cfg = valid()
	cfg.Grace = time.Second
	cfg.CheckpointDir = "/tmp/ckpt"
	cfg.CheckpointEvery = 2
	cfg.Resume = true
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid crash-tolerant config rejected: %v", err)
	}
}
