package transport

import (
	"testing"
	"time"
)

// TestBackoffScheduleTable pins the deterministic redial timeline for
// one concrete link. If this table changes, the retry behavior of every
// deployed pair of daemons changes with it — treat a diff here as a
// protocol change, not a refactor.
func TestBackoffScheduleTable(t *testing.T) {
	seed := backoffSeed(0xC1A85C0DEADBEEF0, 2, 0)
	want := []time.Duration{
		29825751,
		62417576,
		119999602,
		203145268,
		446178577,
		841917204,
		1968554653,
		2174627921,
		2285146138,
		2025343351,
	}
	for attempt, w := range want {
		got := backoffDelay(seed, attempt)
		if got != w {
			t.Fatalf("attempt %d: delay %d, want %d", attempt, got, w)
		}
	}
}

// TestBackoffDeterministicAcrossEndpoints is the property the schedule
// exists for: both endpoints of a link (who see the pair in opposite
// order) and a replay of the same run compute identical timelines.
func TestBackoffDeterministicAcrossEndpoints(t *testing.T) {
	const fp = 0x123456789ABCDEF0
	if a, b := backoffSeed(fp, 1, 4), backoffSeed(fp, 4, 1); a != b {
		t.Fatalf("endpoint seeds differ: %016x vs %016x", a, b)
	}
	seed := backoffSeed(fp, 1, 4)
	for attempt := 0; attempt < 32; attempt++ {
		if a, b := backoffDelay(seed, attempt), backoffDelay(seed, attempt); a != b {
			t.Fatalf("attempt %d not deterministic: %v vs %v", attempt, a, b)
		}
	}
}

// TestBackoffCapAndGrowth checks the shape: monotone non-decreasing
// base steps, never below the base, and capped (including jitter)
// at backoffCap + backoffCap/backoffJitterFrac.
func TestBackoffCapAndGrowth(t *testing.T) {
	seed := backoffSeed(7, 0, 1)
	maxDelay := backoffCap + backoffCap/backoffJitterFrac
	for attempt := 0; attempt < 64; attempt++ {
		d := backoffDelay(seed, attempt)
		if d < backoffBase {
			t.Fatalf("attempt %d: delay %v below base %v", attempt, d, backoffBase)
		}
		if d > maxDelay {
			t.Fatalf("attempt %d: delay %v above cap+jitter %v", attempt, d, maxDelay)
		}
	}
	// Distinct links get distinct jitter streams.
	if backoffSeed(7, 0, 1) == backoffSeed(7, 0, 2) {
		t.Fatal("adjacent peer pairs share a jitter seed")
	}
	if backoffSeed(7, 0, 1) == backoffSeed(8, 0, 1) {
		t.Fatal("distinct runs share a jitter seed")
	}
}
