package transport

import "time"

// backoff.go computes the redial schedule for a supervised peer link.
// The schedule is fully deterministic: it is derived from the run
// fingerprint and the (unordered) peer pair, so the two endpoints of a
// broken link — and a test replaying the same run — compute the exact
// same retry timeline. Determinism matters here for the same reason it
// matters everywhere else in Chiaroscuro: a conformance run must be
// reproducible down to its failure handling, or the chaos harness
// could not assert bit-identical trajectories across injected faults.

const (
	// backoffBase is the delay before the first redial attempt.
	backoffBase = 25 * time.Millisecond
	// backoffCap bounds the exponential growth: attempts beyond the cap
	// retry at a steady cadence instead of backing off forever, so a
	// peer that restarts late is still picked up quickly.
	backoffCap = 2 * time.Second
	// backoffJitterFrac is the fraction of the base delay used as the
	// jitter range: each attempt adds [0, delay/4) of deterministic
	// jitter so redial storms across many links spread out, without
	// giving up reproducibility.
	backoffJitterFrac = 4
)

// backoffSeed derives the jitter seed for the link between peers a and
// b of the run identified by fingerprint. The pair is ordered
// internally, so both endpoints derive the same seed.
func backoffSeed(fingerprint uint64, a, b int) uint64 {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	s := fingerprint ^ uint64(lo)<<32 ^ uint64(hi)
	// One splitmix64 round decorrelates adjacent pairs; without it the
	// seeds of (0,1) and (0,2) differ in a single low bit.
	s += 0x9E3779B97F4A7C15
	s = (s ^ (s >> 30)) * 0xBF58476D1CE4E5B9
	s = (s ^ (s >> 27)) * 0x94D049BB133111EB
	return s ^ (s >> 31)
}

// backoffDelay returns the wait before redial attempt n (0-based) on
// the link with the given jitter seed: base·2ⁿ capped at backoffCap,
// plus deterministic jitter below a quarter of the uncapped step.
func backoffDelay(seed uint64, attempt int) time.Duration {
	delay := backoffBase
	for i := 0; i < attempt && delay < backoffCap; i++ {
		delay *= 2
	}
	if delay > backoffCap {
		delay = backoffCap
	}
	// Derive the attempt's jitter from one more splitmix64 round over
	// (seed, attempt) — stateless, so concurrent links never contend.
	s := seed + uint64(attempt+1)*0x9E3779B97F4A7C15
	s = (s ^ (s >> 30)) * 0xBF58476D1CE4E5B9
	s = (s ^ (s >> 27)) * 0x94D049BB133111EB
	s ^= s >> 31
	jitterRange := delay / backoffJitterFrac
	if jitterRange <= 0 {
		return delay
	}
	return delay + time.Duration(s%uint64(jitterRange))
}
