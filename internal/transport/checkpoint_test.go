package transport

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// ringFrame builds a sequenced wire frame whose embedded seq prefix
// matches the given sequence number, as the supervisor's send path does.
func ringFrame(seq uint64, inner []byte) []byte {
	buf := make([]byte, 8, 8+len(inner))
	binary.BigEndian.PutUint64(buf, seq)
	return append(buf, inner...)
}

// sampleCheckpoint builds a fully populated checkpoint: multiple links
// with retransmit rings, parked barrier state, departed peers, and a
// leftover ceremony backlog — every branch of the codec.
func sampleCheckpoint() *checkpoint {
	return &checkpoint{
		fingerprint:    0xDEADBEEFCAFEF00D,
		id:             2,
		population:     5,
		nextEpoch:      7,
		barrierPending: true,
		samplerState:   0x1234567890ABCDEF,
		coreSnap:       []byte("core-participant-snapshot-bytes"),
		links: map[int]linkState{
			0: {
				outSeq: 12, inSeq: 11, pruned: 9,
				ring: []sentFrame{
					{seq: 10, epoch: 5, frame: ringFrame(10, marshalTick(5, false))},
					{seq: 12, epoch: 6, frame: ringFrame(12, marshalData(6, []byte("payload")))},
				},
			},
			1: {outSeq: 3, inSeq: 8, pruned: 0},
			4: {outSeq: 0, inSeq: 0, pruned: 0},
		},
		pendingData: map[int]map[int][][]byte{
			6: {0: {[]byte("a"), []byte("b")}, 4: {[]byte("c")}},
			7: {1: {[]byte("d")}},
		},
		ticks: map[int]map[int]bool{
			7: {0: false, 1: true, 4: false},
		},
		left:    map[int]bool{3: true},
		backlog: []inMsg{{from: 1, kind: mtData, epoch: 7, payload: []byte("late")}, {from: 4, kind: mtTick, epoch: 7, done: true}},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	want := sampleCheckpoint()
	got, err := decodeCheckpoint(encodeCheckpoint(want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.fingerprint != want.fingerprint || got.id != want.id || got.population != want.population {
		t.Fatalf("identity fields differ: %+v", got)
	}
	if got.nextEpoch != want.nextEpoch || got.barrierPending != want.barrierPending {
		t.Fatalf("epoch fields differ: nextEpoch=%d pending=%v", got.nextEpoch, got.barrierPending)
	}
	if got.samplerState != want.samplerState {
		t.Fatalf("sampler state %x, want %x", got.samplerState, want.samplerState)
	}
	if !bytes.Equal(got.coreSnap, want.coreSnap) {
		t.Fatal("core snapshot bytes differ")
	}
	if !reflect.DeepEqual(got.links, want.links) {
		t.Fatalf("links differ:\n got %+v\nwant %+v", got.links, want.links)
	}
	if !reflect.DeepEqual(got.pendingData, want.pendingData) {
		t.Fatalf("pendingData differ:\n got %+v\nwant %+v", got.pendingData, want.pendingData)
	}
	if !reflect.DeepEqual(got.ticks, want.ticks) {
		t.Fatalf("ticks differ:\n got %+v\nwant %+v", got.ticks, want.ticks)
	}
	if !reflect.DeepEqual(got.left, want.left) {
		t.Fatalf("left differ: %+v", got.left)
	}
	if len(got.backlog) != len(want.backlog) {
		t.Fatalf("backlog length %d, want %d", len(got.backlog), len(want.backlog))
	}
	for i := range want.backlog {
		g, w := got.backlog[i], want.backlog[i]
		if g.from != w.from || g.kind != w.kind || g.epoch != w.epoch || g.done != w.done || !bytes.Equal(g.payload, w.payload) {
			t.Fatalf("backlog[%d] = %+v, want %+v", i, g, w)
		}
	}
}

// TestCheckpointRejectsCorruption mutates a valid encoding in targeted
// ways; every mutation must produce a clean error.
func TestCheckpointRejectsCorruption(t *testing.T) {
	valid := encodeCheckpoint(sampleCheckpoint())
	mutate := func(name string, f func([]byte) []byte) {
		b := append([]byte(nil), valid...)
		if _, err := decodeCheckpoint(f(b)); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
	mutate("bad magic", func(b []byte) []byte { b[4] ^= 0xFF; return b })
	mutate("bad version", func(b []byte) []byte { b[11] = 99; return b })
	mutate("truncated", func(b []byte) []byte { return b[:len(b)/2] })
	mutate("trailing garbage", func(b []byte) []byte { return append(b, 0xAA) })
	if _, err := decodeCheckpoint(nil); err == nil {
		t.Error("empty checkpoint accepted")
	}
	// Every prefix truncation must fail, not panic.
	for i := 0; i < len(valid); i++ {
		if _, err := decodeCheckpoint(valid[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// A ring frame whose embedded seq disagrees with its entry.
	ck := sampleCheckpoint()
	ls := ck.links[0]
	ls.ring[0].frame = ringFrame(999, marshalTick(5, false))
	ck.links[0] = ls
	if _, err := decodeCheckpoint(encodeCheckpoint(ck)); err == nil {
		t.Error("ring frame seq mismatch accepted")
	}
	// Ring seqs not ascending past the pruned watermark.
	ck = sampleCheckpoint()
	ls = ck.links[0]
	ls.ring[0].seq = ls.pruned
	ls.ring[0].frame = ringFrame(ls.pruned, marshalTick(5, false))
	ck.links[0] = ls
	if _, err := decodeCheckpoint(encodeCheckpoint(ck)); err == nil {
		t.Error("ring seq at pruned watermark accepted")
	}
}

// TestLoadCheckpointRejectsMismatch: a checkpoint from a different run
// configuration, node id, or population must not restore.
func TestLoadCheckpointRejectsMismatch(t *testing.T) {
	dir := t.TempDir()
	ck := sampleCheckpoint()
	cfg := Config{ID: ck.id, Population: ck.population, CheckpointDir: dir}
	path := checkpointPath(cfg)
	if err := writeFileAtomic(path, encodeCheckpoint(ck)); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path, cfg, ck.fingerprint); err != nil {
		t.Fatalf("matching checkpoint rejected: %v", err)
	}
	if _, err := loadCheckpoint(path, cfg, ck.fingerprint+1); err == nil {
		t.Error("fingerprint mismatch accepted")
	}
	wrongID := cfg
	wrongID.ID = ck.id + 1
	if _, err := loadCheckpoint(path, wrongID, ck.fingerprint); err == nil {
		t.Error("id mismatch accepted")
	}
	wrongPop := cfg
	wrongPop.Population = ck.population + 1
	if _, err := loadCheckpoint(path, wrongPop, ck.fingerprint); err == nil {
		t.Error("population mismatch accepted")
	}
}

// TestWriteFileAtomic: the write leaves no temp residue, replaces prior
// content wholesale, and a pre-existing stale temp file does not break
// it — the invariants WriteHistory and the checkpoint writer rely on.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	// Simulate an earlier torn write: garbage at the target and a stale
	// temp file left by a crashed writer.
	if err := os.WriteFile(path, []byte("torn-partial-garbag"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".tmp", []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	want := []byte("complete-new-content")
	if err := writeFileAtomic(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q", got, want)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the target", len(entries))
	}
}

// FuzzDecodeCheckpoint hardens the decoder: arbitrary bytes must error
// cleanly, and anything accepted must re-encode to a decodable form.
func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add(encodeCheckpoint(sampleCheckpoint()))
	f.Add([]byte{})
	f.Add([]byte{0xC1, 0xA8, 0xC4, 0xB7})
	f.Fuzz(func(t *testing.T, b []byte) {
		ck, err := decodeCheckpoint(b)
		if err != nil {
			return
		}
		if _, err := decodeCheckpoint(encodeCheckpoint(ck)); err != nil {
			t.Fatalf("accepted checkpoint does not round-trip: %v", err)
		}
	})
}
