package netchaos

import (
	"io"
	"net"
	"testing"
	"time"
)

func TestParseScenarios(t *testing.T) {
	valid := []string{
		"reset@5",
		"reset@5:3",
		"stall@2:50ms",
		"rstall@7:1s",
		"partial",
		"refuse@2",
		"reset@12:2, partial, refuse@1",
		"stall@1:1ms,rstall@1:1ms",
	}
	for _, s := range valid {
		if _, err := Parse(s); err != nil {
			t.Errorf("Parse(%q): %v", s, err)
		}
	}
	invalid := []string{
		"",
		"  ",
		"reset",
		"reset@",
		"reset@0",
		"reset@-3",
		"reset@5:0",
		"reset@x",
		"stall@2",
		"stall@2:0s",
		"stall@2:2h",
		"stall@2:xyz",
		"refuse@",
		"explode@4",
		"partial,",
		"reset@5,,partial",
	}
	for _, s := range invalid {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted an invalid scenario", s)
		}
	}
}

// TestResetDeterministicAndBudgeted drives frames through a chaos-
// wrapped loopback pair: the injected reset must land on the same
// write for the same seed, and the process-wide budget must bound the
// number of resets.
func TestResetDeterministicAndBudgeted(t *testing.T) {
	failAt := func(seed int64) int {
		c, err := New("reset@4:1", seed)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := c.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go io.Copy(io.Discard, conn)
			}
		}()
		conn, err := c.Dial("tcp", ln.Addr().String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		buf := make([]byte, 64)
		for i := 1; i <= 100; i++ {
			if _, err := conn.Write(buf); err != nil {
				return i
			}
		}
		t.Fatal("no reset within 100 writes despite reset@4:1")
		return 0
	}
	a, b := failAt(7), failAt(7)
	if a != b {
		t.Fatalf("same seed produced resets at writes %d and %d", a, b)
	}
	if a < 4 || a >= 8 {
		t.Fatalf("reset at write %d, want within jittered [4, 8)", a)
	}

	// Budget exhausted: a second connection from the same plan must
	// never reset.
	c, err := New("reset@4:1", 7)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := c.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, conn)
		}
	}()
	dialOnce := func() error {
		conn, err := c.Dial("tcp", ln.Addr().String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		buf := make([]byte, 64)
		for i := 0; i < 20; i++ {
			if _, err := conn.Write(buf); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dialOnce(); err == nil {
		t.Fatal("first connection survived its reset")
	}
	if err := dialOnce(); err != nil {
		t.Fatalf("second connection reset after budget exhausted: %v", err)
	}
}

// TestRefuseDropsEarlyConnections checks that refused connections never
// reach the accept caller and that later dials get through.
func TestRefuseDropsEarlyConnections(t *testing.T) {
	c, err := New("refuse@2", 1)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := c.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 4)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- conn
		}
	}()
	for i := 0; i < 3; i++ {
		conn, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer conn.Close()
	}
	select {
	case conn := <-accepted:
		conn.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("third connection never accepted")
	}
	select {
	case <-accepted:
		t.Fatal("refused connection reached the accept caller")
	case <-time.After(100 * time.Millisecond):
	}
}

// FuzzParseScenario hardens the grammar: arbitrary strings must parse
// or fail cleanly, never panic.
func FuzzParseScenario(f *testing.F) {
	f.Add("reset@5:2,partial")
	f.Add("stall@2:50ms,rstall@3:10ms,refuse@1")
	f.Add("@@@,,,")
	f.Fuzz(func(t *testing.T, s string) {
		rules, err := Parse(s)
		if err == nil && len(rules) == 0 {
			t.Fatal("accepted scenario with no rules")
		}
	})
}
