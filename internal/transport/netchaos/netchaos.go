// Package netchaos injects deterministic network faults underneath the
// transport layer: connection resets, read/write stalls, partial
// writes, and listener refusals, all driven by a compact scenario
// string and a seed. The transport's supervision (sequence numbers,
// retransmit rings, resume handshake, grace windows) must absorb every
// scenario without changing the disclosed clustering trajectories —
// which is exactly what the chaos conformance tests assert.
//
// Scenario grammar — comma-separated directives:
//
//	reset@N[:M]   close each connection after ~N successful writes,
//	              at most M resets across the whole process (default 1);
//	              the budget guarantees the run eventually progresses
//	stall@N:DUR   pause DUR before a connection's Nth write
//	rstall@N:DUR  pause DUR before a connection's Nth read
//	partial       split every multi-byte write into two syscalls
//	refuse@L      drop the first L inbound connections at the listener
//
// The exact operation hit by reset/stall is jittered per connection
// from the seed (within [N, 2N)), so repeated connections do not fail
// in lockstep; the schedule is a pure function of (scenario, seed,
// connection index).
package netchaos

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// rule is one parsed directive.
type rule struct {
	kind   string // "reset", "stall", "rstall", "partial", "refuse"
	n      int
	budget int
	dur    time.Duration
}

// Net is one process's chaos plan: wrap dials and listens through it.
type Net struct {
	seed  int64
	rules []rule

	mu          sync.Mutex
	connIndex   int
	resetBudget int
	refuseLeft  int
}

// New parses a scenario string into a chaos plan.
func New(scenario string, seed int64) (*Net, error) {
	rules, err := Parse(scenario)
	if err != nil {
		return nil, err
	}
	c := &Net{seed: seed, rules: rules}
	for _, r := range rules {
		switch r.kind {
		case "reset":
			c.resetBudget += r.budget
		case "refuse":
			c.refuseLeft += r.n
		}
	}
	return c, nil
}

// Parse validates a scenario string. Exposed (and fuzzed) separately so
// flag validation can fail fast without building a plan.
func Parse(scenario string) ([]rule, error) {
	if strings.TrimSpace(scenario) == "" {
		return nil, errors.New("netchaos: empty scenario")
	}
	var rules []rule
	for _, part := range strings.Split(scenario, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, errors.New("netchaos: empty directive")
		}
		if part == "partial" {
			rules = append(rules, rule{kind: "partial"})
			continue
		}
		name, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("netchaos: directive %q: want name@args", part)
		}
		switch name {
		case "reset":
			nStr, mStr, hasBudget := strings.Cut(rest, ":")
			n, err := parseCount(nStr)
			if err != nil {
				return nil, fmt.Errorf("netchaos: reset count: %w", err)
			}
			budget := 1
			if hasBudget {
				if budget, err = parseCount(mStr); err != nil {
					return nil, fmt.Errorf("netchaos: reset budget: %w", err)
				}
			}
			rules = append(rules, rule{kind: "reset", n: n, budget: budget})
		case "stall", "rstall":
			nStr, dStr, ok := strings.Cut(rest, ":")
			if !ok {
				return nil, fmt.Errorf("netchaos: %s: want %s@N:duration", name, name)
			}
			n, err := parseCount(nStr)
			if err != nil {
				return nil, fmt.Errorf("netchaos: %s count: %w", name, err)
			}
			dur, err := time.ParseDuration(dStr)
			if err != nil || dur <= 0 || dur > time.Minute {
				return nil, fmt.Errorf("netchaos: %s duration %q out of (0, 1m]", name, dStr)
			}
			rules = append(rules, rule{kind: name, n: n, dur: dur})
		case "refuse":
			n, err := parseCount(rest)
			if err != nil {
				return nil, fmt.Errorf("netchaos: refuse count: %w", err)
			}
			rules = append(rules, rule{kind: "refuse", n: n})
		default:
			return nil, fmt.Errorf("netchaos: unknown directive %q", name)
		}
	}
	return rules, nil
}

func parseCount(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad count %q", s)
	}
	if n < 1 || n > 1<<20 {
		return 0, fmt.Errorf("count %d out of [1, 2^20]", n)
	}
	return n, nil
}

// splitmix is the same 64-bit finalizer the transport's backoff jitter
// uses: one round is enough to decorrelate adjacent connection indexes.
func splitmix(v uint64) uint64 {
	v += 0x9E3779B97F4A7C15
	v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9
	v = (v ^ (v >> 27)) * 0x94D049BB133111EB
	return v ^ (v >> 31)
}

// jitter maps a directive threshold into [n, 2n) deterministically for
// one (seed, connIndex, rule) triple.
func (c *Net) jitter(connIndex, ruleIndex, n int) int {
	h := splitmix(uint64(c.seed) ^ uint64(connIndex)<<20 ^ uint64(ruleIndex)<<40)
	return n + int(h%uint64(n))
}

// Dial opens a real connection and wraps it with this plan's faults —
// the transport Config.Dialer hook.
func (c *Net) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	conn, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return c.wrap(conn), nil
}

// Listen opens a real listener whose accepted connections are wrapped —
// the transport Config.Listener hook. The refuse budget drops inbound
// connections before the transport ever sees them.
func (c *Net) Listen(network, addr string) (net.Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return &listener{Listener: ln, net: c}, nil
}

func (c *Net) wrap(inner net.Conn) net.Conn {
	c.mu.Lock()
	idx := c.connIndex
	c.connIndex++
	c.mu.Unlock()
	w := &conn{Conn: inner, net: c, resetAt: -1, stallAt: -1, rstallAt: -1}
	for i, r := range c.rules {
		switch r.kind {
		case "reset":
			w.resetAt = c.jitter(idx, i, r.n)
		case "stall":
			w.stallAt = c.jitter(idx, i, r.n)
			w.stallDur = r.dur
		case "rstall":
			w.rstallAt = c.jitter(idx, i, r.n)
			w.rstallDur = r.dur
		case "partial":
			w.partial = true
		}
	}
	return w
}

// takeReset consumes one unit of the process-wide reset budget.
func (c *Net) takeReset() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.resetBudget <= 0 {
		return false
	}
	c.resetBudget--
	return true
}

func (c *Net) takeRefuse() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.refuseLeft <= 0 {
		return false
	}
	c.refuseLeft--
	return true
}

type listener struct {
	net.Listener
	net *Net
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.net.takeRefuse() {
			// Model a refused connection: the dialer sees an immediate
			// close and retries.
			conn.Close()
			continue
		}
		return l.net.wrap(conn), nil
	}
}

// errReset is what a chaos-closed connection reports to its own user;
// the remote side sees a plain close.
var errReset = errors.New("netchaos: injected connection reset")

type conn struct {
	net.Conn
	net *Net

	mu        sync.Mutex
	reads     int
	writes    int
	resetAt   int // write count that triggers a reset; -1 = never
	stallAt   int
	stallDur  time.Duration
	rstallAt  int
	rstallDur time.Duration
	partial   bool
	dead      bool
}

func (w *conn) Write(b []byte) (int, error) {
	w.mu.Lock()
	w.writes++
	cnt := w.writes
	if w.dead {
		w.mu.Unlock()
		return 0, errReset
	}
	stall := time.Duration(0)
	if cnt == w.stallAt {
		stall = w.stallDur
	}
	reset := cnt == w.resetAt && w.net.takeReset()
	if reset {
		w.dead = true
	}
	w.mu.Unlock()
	if stall > 0 {
		time.Sleep(stall)
	}
	if reset {
		w.Conn.Close()
		return 0, errReset
	}
	if w.partial && len(b) > 1 {
		half := len(b) / 2
		n1, err := w.Conn.Write(b[:half])
		if err != nil {
			return n1, err
		}
		n2, err := w.Conn.Write(b[half:])
		return n1 + n2, err
	}
	return w.Conn.Write(b)
}

func (w *conn) Read(b []byte) (int, error) {
	w.mu.Lock()
	w.reads++
	cnt := w.reads
	if w.dead {
		w.mu.Unlock()
		return 0, errReset
	}
	stall := time.Duration(0)
	if cnt == w.rstallAt {
		stall = w.rstallDur
	}
	w.mu.Unlock()
	if stall > 0 {
		time.Sleep(stall)
	}
	return w.Conn.Read(b)
}
