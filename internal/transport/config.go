// Package transport runs Chiaroscuro participants as real networked
// processes: TCP connections carrying the internal/wire artifact format
// inside length-prefixed frames, a join/leave handshake, and a
// coordinator-free epoch clock that reproduces the simulation engines'
// message-visibility discipline. The participant logic itself is
// internal/core's — the daemon and the in-process engines share one
// protocol implementation, which is what lets the conformance harness
// (internal/transport/conformance) demand bit-identical disclosed
// trajectories across the process boundary.
//
// The epoch clock works without any coordinator: after stepping its
// participant at epoch e, every node broadcasts a tick(e) to all peers
// and enters epoch e+1 only once it holds a tick(e) from everyone.
// Because each TCP connection delivers in order, a peer's tick(e)
// guarantees all of that peer's epoch-e payloads have already arrived —
// the barrier needs no payload counts and no retransmission. Epoch e of
// the mesh corresponds exactly to cycle e of the simulation: messages
// sent at e become visible at e+1, and each node's inbox is ordered by
// ascending sender id with per-sender FIFO, the simulator's contract.
package transport

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// Config configures one transport node (one participant process).
type Config struct {
	// ID is this node's participant id, in [0, Population).
	ID int
	// Population is the total number of nodes in the run.
	Population int
	// Listen is the TCP listen address (host:0 picks a free port).
	Listen string
	// Peers, when non-empty, lists every node's dial address indexed by
	// id (the entry at ID is ignored). Exactly one of Peers and AddrDir
	// must be set.
	Peers []string
	// AddrDir, when non-empty, is a shared rendezvous directory: each
	// node writes "<id>.addr" with its bound address and polls for the
	// others — how the loopback harness wires a mesh of :0 listeners.
	AddrDir string
	// EpochTimeout bounds how long a node waits at one epoch barrier
	// for the slowest peer tick before declaring the mesh wedged.
	EpochTimeout time.Duration
	// Logf, when non-nil, receives progress lines (epoch transitions,
	// handshake results). Nil discards them.
	Logf func(format string, args ...any)

	// Grace, when positive, makes the node crash-tolerant: a read or
	// write error on a peer link marks the link down and triggers a
	// supervised redial (with deterministic capped backoff) instead of
	// failing the run, and epoch barriers keep waiting as long as any
	// missing peer's link has been down for less than Grace. Zero keeps
	// the legacy fail-fast behavior: the first link error is fatal.
	Grace time.Duration
	// WriteTimeout bounds a single frame write on a peer link, so a dead
	// peer with a full socket buffer cannot block the sender forever.
	// Zero defaults to EpochTimeout.
	WriteTimeout time.Duration
	// CheckpointDir, when non-empty, enables epoch checkpoints: the node
	// atomically writes its full resumable state (core snapshot, sampler
	// RNG, per-link sequence numbers and retransmit rings, barrier
	// buffers) to "<id>.ckpt" in this directory every CheckpointEvery
	// epochs, and on interruption.
	CheckpointDir string
	// CheckpointEvery is the epoch interval between checkpoints. Zero
	// defaults to 1 (every epoch) when CheckpointDir is set.
	CheckpointEvery int
	// Resume makes the node restore from the checkpoint in CheckpointDir
	// instead of starting fresh: it reconnects to the surviving peers
	// with a resume handshake, replays lost frames, and rejoins the mesh
	// at the checkpointed barrier.
	Resume bool
	// Interrupt, when non-nil, requests a graceful shutdown when it
	// becomes readable: the node writes a final checkpoint (if
	// configured), sends bye, and returns ErrInterrupted.
	Interrupt <-chan struct{}
	// Dialer, when non-nil, replaces net.DialTimeout for peer
	// connections — the hook the chaos harness uses to inject faulty
	// links. Nil uses the real dialer.
	Dialer func(network, addr string, timeout time.Duration) (net.Conn, error)
	// Listener, when non-nil, replaces net.Listen — the accept-side
	// chaos hook. Nil uses the real listener.
	Listener func(network, addr string) (net.Listener, error)
}

// Validate checks the transport configuration, returning the first
// problem found. Error texts are pinned by TestTransportConfigErrors.
func (c *Config) Validate() error {
	if c.Population < 2 {
		return errors.New("transport: population must be at least 2")
	}
	if c.ID < 0 || c.ID >= c.Population {
		return fmt.Errorf("transport: node id %d outside population [0, %d)", c.ID, c.Population)
	}
	if c.Listen == "" {
		return errors.New("transport: listen address is required")
	}
	if (len(c.Peers) == 0) == (c.AddrDir == "") {
		return errors.New("transport: exactly one of peer list and rendezvous dir is required")
	}
	if len(c.Peers) > 0 {
		if len(c.Peers) != c.Population {
			return fmt.Errorf("transport: peer list has %d addresses, want one per node (%d)", len(c.Peers), c.Population)
		}
		for i, addr := range c.Peers {
			if i != c.ID && addr == "" {
				return fmt.Errorf("transport: peer %d has an empty address", i)
			}
		}
	}
	if c.EpochTimeout <= 0 {
		return errors.New("transport: epoch timeout must be positive")
	}
	if c.Grace < 0 {
		return errors.New("transport: grace must not be negative")
	}
	if c.WriteTimeout < 0 {
		return errors.New("transport: write timeout must not be negative")
	}
	if c.CheckpointEvery < 0 {
		return errors.New("transport: checkpoint interval must not be negative")
	}
	if c.CheckpointEvery > 0 && c.CheckpointDir == "" {
		return errors.New("transport: checkpoint interval requires a checkpoint dir")
	}
	if c.Resume && c.CheckpointDir == "" {
		return errors.New("transport: resume requires a checkpoint dir")
	}
	return nil
}

// writeTimeout returns the effective per-frame write deadline.
func (c *Config) writeTimeout() time.Duration {
	if c.WriteTimeout > 0 {
		return c.WriteTimeout
	}
	return c.EpochTimeout
}

// checkpointEvery returns the effective checkpoint cadence in epochs,
// or 0 when checkpointing is disabled.
func (c *Config) checkpointEvery() int {
	if c.CheckpointDir == "" {
		return 0
	}
	if c.CheckpointEvery > 0 {
		return c.CheckpointEvery
	}
	return 1
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}
