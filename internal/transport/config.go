// Package transport runs Chiaroscuro participants as real networked
// processes: TCP connections carrying the internal/wire artifact format
// inside length-prefixed frames, a join/leave handshake, and a
// coordinator-free epoch clock that reproduces the simulation engines'
// message-visibility discipline. The participant logic itself is
// internal/core's — the daemon and the in-process engines share one
// protocol implementation, which is what lets the conformance harness
// (internal/transport/conformance) demand bit-identical disclosed
// trajectories across the process boundary.
//
// The epoch clock works without any coordinator: after stepping its
// participant at epoch e, every node broadcasts a tick(e) to all peers
// and enters epoch e+1 only once it holds a tick(e) from everyone.
// Because each TCP connection delivers in order, a peer's tick(e)
// guarantees all of that peer's epoch-e payloads have already arrived —
// the barrier needs no payload counts and no retransmission. Epoch e of
// the mesh corresponds exactly to cycle e of the simulation: messages
// sent at e become visible at e+1, and each node's inbox is ordered by
// ascending sender id with per-sender FIFO, the simulator's contract.
package transport

import (
	"errors"
	"fmt"
	"time"
)

// Config configures one transport node (one participant process).
type Config struct {
	// ID is this node's participant id, in [0, Population).
	ID int
	// Population is the total number of nodes in the run.
	Population int
	// Listen is the TCP listen address (host:0 picks a free port).
	Listen string
	// Peers, when non-empty, lists every node's dial address indexed by
	// id (the entry at ID is ignored). Exactly one of Peers and AddrDir
	// must be set.
	Peers []string
	// AddrDir, when non-empty, is a shared rendezvous directory: each
	// node writes "<id>.addr" with its bound address and polls for the
	// others — how the loopback harness wires a mesh of :0 listeners.
	AddrDir string
	// EpochTimeout bounds how long a node waits at one epoch barrier
	// for the slowest peer tick before declaring the mesh wedged.
	EpochTimeout time.Duration
	// Logf, when non-nil, receives progress lines (epoch transitions,
	// handshake results). Nil discards them.
	Logf func(format string, args ...any)
}

// Validate checks the transport configuration, returning the first
// problem found. Error texts are pinned by TestTransportConfigErrors.
func (c *Config) Validate() error {
	if c.Population < 2 {
		return errors.New("transport: population must be at least 2")
	}
	if c.ID < 0 || c.ID >= c.Population {
		return fmt.Errorf("transport: node id %d outside population [0, %d)", c.ID, c.Population)
	}
	if c.Listen == "" {
		return errors.New("transport: listen address is required")
	}
	if (len(c.Peers) == 0) == (c.AddrDir == "") {
		return errors.New("transport: exactly one of peer list and rendezvous dir is required")
	}
	if len(c.Peers) > 0 {
		if len(c.Peers) != c.Population {
			return fmt.Errorf("transport: peer list has %d addresses, want one per node (%d)", len(c.Peers), c.Population)
		}
		for i, addr := range c.Peers {
			if i != c.ID && addr == "" {
				return fmt.Errorf("transport: peer %d has an empty address", i)
			}
		}
	}
	if c.EpochTimeout <= 0 {
		return errors.New("transport: epoch timeout must be positive")
	}
	return nil
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}
