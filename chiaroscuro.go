// Package chiaroscuro is a Go implementation of Chiaroscuro (Allard,
// Hébrail, Masseglia, Pacitti — SIGMOD 2015; demonstrated at ICDE 2016):
// privacy-preserving k-means clustering of personal time-series that are
// massively distributed over honest-but-curious personal devices.
//
// The protocol never centralizes raw series. Per k-means iteration:
//
//  1. each participant assigns its own series to the closest of the
//     current differentially-private centroids (locally, in cleartext);
//  2. the per-cluster sums and counts — and the Laplace noise that will
//     protect them, assembled from per-participant gamma noise shares —
//     are aggregated under additively-homomorphic (Damgård–Jurik)
//     encryption by a push-sum gossip protocol;
//  3. the noise is added to the means while still encrypted, the
//     perturbed aggregate is opened by threshold ("collaborative")
//     decryption, and the resulting ε-differentially-private centroids
//     seed the next iteration.
//
// The two-sided working set — cleartext-but-perturbed centroids versus
// encrypted means — is the paper's Diptych data structure.
//
// Quick start:
//
//	series, _, _ := chiaroscuro.SyntheticCER(500, 24, 42)
//	chiaroscuro.Normalize01(series)
//	res, err := chiaroscuro.Cluster(series, chiaroscuro.Config{
//		K:       5,
//		Epsilon: 1.0,
//	})
//
// The simulation runs every participant as a node of a cycle-driven P2P
// network (mirroring the paper's Peersim platform), with either real
// threshold homomorphic encryption or the demonstration's accounted
// plaintext mode (identical distributed algorithms, measured crypto
// costs).
package chiaroscuro

import (
	"errors"
	"fmt"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/dp"
	"chiaroscuro/internal/kmeans"
	"chiaroscuro/internal/quality"
	"chiaroscuro/internal/simnet"
	"chiaroscuro/internal/timeseries"
)

// Backend selects the encryption execution mode.
type Backend string

const (
	// BackendAccounted runs the identical distributed algorithms on
	// plaintext residues while accounting every homomorphic operation —
	// the demonstration platform's configuration (Sec. III.B).
	BackendAccounted Backend = "accounted"
	// BackendDamgardJurik runs real threshold Damgård–Jurik encryption
	// end to end. Use small populations and key sizes.
	BackendDamgardJurik Backend = "damgard-jurik"
)

// Smoothing configures the perturbed-mean smoothing heuristic.
// Method is one of "none", "moving-average", "exponential".
type Smoothing struct {
	Method string
	Window int     // moving-average width (default 3)
	Alpha  float64 // exponential factor (default 0.35)
}

// Config configures Cluster. Zero values take documented defaults.
type Config struct {
	// K is the number of clusters (profiles) to build. Required.
	K int
	// Epsilon is the global differential-privacy budget. Required.
	Epsilon float64
	// Iterations is the number of k-means iterations (default 8). The
	// budget is split across exactly this many disclosures.
	Iterations int
	// ConvergeThreshold enables early stopping when the maximum centroid
	// displacement drops below it (0 = disabled).
	ConvergeThreshold float64
	// GossipRounds is the number of gossip exchanges per participant per
	// aggregation (default ~log2(n)+10).
	GossipRounds int
	// DecryptThreshold is the number of distinct participants whose
	// partial decryptions open a ciphertext (default max(3, n/10)).
	DecryptThreshold int
	// Backend selects BackendAccounted (default) or BackendDamgardJurik.
	Backend Backend
	// Engine selects the execution engine:
	//
	//   - "cycles" (default): the Peersim-like cycle-driven simulator,
	//     one sequential pass per cycle. Deterministic given Seed.
	//   - "sharded": the same cycle-driven simulation executed by
	//     Workers shard workers per cycle with a deterministic
	//     reduction. Bit-identical to "cycles" at any worker count, and
	//     the engine of choice for large populations: wall-clock divides
	//     by the available cores.
	//   - "async": one goroutine per participant, channel messaging,
	//     periodical jittered activations, no global synchronization —
	//     the paper's deployment model; not deterministic.
	Engine string
	// Workers is the shard-worker count of the "sharded" engine
	// (default GOMAXPROCS; ignored by the other engines). Any value
	// yields the same results — it only trades wall-clock for cores —
	// and the effective count is capped at the population size and at
	// max(64, 4·GOMAXPROCS).
	Workers int
	// Packed packs multiple coordinates of the encrypted side into each
	// ciphertext (slot packing): encrypts, gossip halvings, partial
	// decryptions and wire bytes all shrink by the packing factor
	// (~8–16× at a 1024-bit key). On the accounted backend, packed and
	// unpacked runs disclose bit-identical centroids; see docs/CRYPTO.md
	// ("Slot packing") for the slot layout and its exactness argument.
	Packed bool
	// ModulusBits is the encryption key size (default 1024 accounted /
	// 256 real; fixtures exist for 64–2048).
	ModulusBits int
	// Degree is the Damgård–Jurik s (default 1 = Paillier).
	Degree int
	// Strategy names the privacy-budget distribution heuristic:
	// "uniform" (default), "geo-increasing", "geo-decreasing",
	// "final-boost".
	Strategy string
	// Smoothing configures the perturbed-mean smoothing heuristic.
	Smoothing Smoothing
	// TrackInertia additionally discloses a differentially-private
	// estimate of the clustering objective (mean squared distance to the
	// closest centroid) each iteration — the paper's footnote-2
	// "monitoring centroids quality" extension. It raises the noise
	// scale slightly (the extra aggregate enters the sensitivity).
	TrackInertia bool
	// InertiaStopThreshold stops the run when the tracked inertia's
	// relative improvement falls below it (requires TrackInertia).
	InertiaStopThreshold float64
	// InitialCentroids optionally fixes the public starting centroids
	// (e.g. to share an init with a centralized baseline); each must
	// have the series dimension. When nil, data-independent uniform
	// random centroids are drawn from Seed.
	InitialCentroids [][]float64
	// Seed makes the whole run deterministic.
	Seed int64
	// ChurnCrashProb / ChurnRejoinProb inject per-cycle node failures.
	// Churn is a cycle-driven feature: it is supported by the "cycles"
	// and "sharded" engines only, and rejected up front for "async"
	// (the asynchronous runtime has no global cycle clock to apply the
	// per-cycle probabilities against — model failures there with a
	// Faults scenario's scheduled outages instead).
	ChurnCrashProb  float64
	ChurnRejoinProb float64
	// Faults is a deterministic fault-injection scenario in the
	// internal/simnet grammar — semicolon-separated clauses:
	//
	//	drop=P  dup=P  delay=PxD          per-message link faults
	//	crash@C=ids                       crash-stop at cycle C
	//	outage@C+D=ids[:reset]            down D cycles (optional state loss)
	//	lag@C+D=ids                       laggards stalled D cycles
	//	garble=ids  malform=ids  replay=ids  noise*F=ids   byzantine senders
	//	seed=S                            pin the fault seed
	//
	// e.g. "drop=0.05;delay=0.2x3;outage@10+8=1,2:reset;garble=7". The
	// same seed and scenario replay the identical fault trajectory on
	// the cycles and sharded engines at any worker count, so a failing
	// scenario is a replayable regression test. Empty injects nothing.
	Faults string

	// --- Streaming fields (OpenStream only; Cluster rejects them) ---

	// LifetimeEpsilon is the longitudinal privacy budget of a streaming
	// session: every window's disclosure draws from it, and when it is
	// spent the session hard-refuses further windows. Required for
	// OpenStream; must be zero for Cluster (whose budget is Epsilon).
	LifetimeEpsilon float64
	// Windows is the streaming planning horizon the budget strategy
	// provisions for (default 8). Sessions may run fewer windows — or
	// more, budget permitting.
	Windows int
	// WarmStart seeds each window's starting centroids with the
	// previous window's disclosed result. Only already-public data
	// crosses the window boundary.
	WarmStart bool
	// BudgetStrategy names the per-window epsilon spend policy:
	// "uniform" (default — remaining budget split evenly over the
	// remaining horizon), "decaying" (half of what remains each
	// window), or "threshold" (re-cluster only when the disclosed
	// centroid drift exceeds DriftThreshold, skipping quiet windows to
	// save budget).
	BudgetStrategy string
	// DriftThreshold is the "threshold" strategy's drift bound
	// (default 0.05). Only meaningful with BudgetStrategy "threshold".
	DriftThreshold float64
}

// Iteration is one entry of the per-iteration trace.
type Iteration struct {
	// Index is the 0-based iteration number.
	Index int
	// Epsilon is the budget slice spent on this iteration's disclosure.
	Epsilon float64
	// Centroids are the disclosed (perturbed, smoothed) centroids.
	Centroids [][]float64
	// ExactCentroids are the oracle noise-free means under the same
	// assignments (computed outside the protocol, for evaluation only).
	ExactCentroids [][]float64
	// NoiseRMSE is the RMS perturbed-vs-exact difference — the demo's
	// "impact of the noise" graph (Fig. 3 panel 5).
	NoiseRMSE float64
	// Counts are the disclosed perturbed relative cluster sizes.
	Counts []float64
	// InertiaEstimate is the disclosed quality estimate when
	// Config.TrackInertia is set (NaN otherwise).
	InertiaEstimate float64
}

// PrivacyReport summarizes the differential-privacy position of a run.
type PrivacyReport struct {
	// EpsilonBudget and EpsilonSpent are the global budget and its
	// consumed part (they match unless the run stopped early).
	EpsilonBudget float64
	EpsilonSpent  float64
	// Disclosures is the number of budgeted releases.
	Disclosures int
	// GossipRelErr is the observed deviation of the disclosed relative
	// cluster sizes from their ideal sum of 1 — an aggregate indicator
	// of the protocol's distortion (gossip mixing plus realized count
	// noise), the reason the ε guarantee is "probabilistic". For a pure
	// measurement of the gossip approximation alone see experiment E10.
	GossipRelErr float64
}

// NetworkCost aggregates the network-side costs of the run.
type NetworkCost struct {
	MessagesSent    int
	MessagesDropped int
	BytesSent       int64
	Cycles          int
	// FaultDropped, Duplicated and Delayed count the messages the fault
	// scenario (Config.Faults) dropped, duplicated and delayed
	// (FaultDropped is included in MessagesDropped).
	FaultDropped int
	Duplicated   int
	Delayed      int
}

// CryptoOps counts homomorphic operations across all participants.
type CryptoOps struct {
	Encrypts        int64
	Adds            int64
	Halvings        int64
	PartialDecrypts int64
	Combines        int64
	// CombineCtxHits counts combines whose responder-set plan (Lagrange
	// coefficients, multiexp tables) was served from cache instead of
	// rebuilt; PartialCacheHits counts decrypt requests answered from a
	// responder's memoized partials instead of recomputed.
	CombineCtxHits   int64
	PartialCacheHits int64
}

// DecryptPhaseCost breaks the collaborative-decryption phase (paper
// steps 2c/2d) out of the aggregate network and timing figures.
type DecryptPhaseCost struct {
	// Cycles and Wall are the decrypt-classified share of the cycle
	// engines' schedule and wall clock (zero for the async engine).
	Cycles int
	Wall   time.Duration
	// Requests and Bytes are the decrypt requests sent and the request
	// plus response bytes across the population.
	Requests int
	Bytes    int64
}

// Result is the outcome of a Cluster run.
type Result struct {
	// Centroids are the final privacy-preserving profiles.
	Centroids [][]float64
	// Assignments maps each participant to its closest final centroid.
	Assignments []int
	// Inertia is the within-cluster sum of squared distances.
	Inertia float64
	// ConvergedAtIteration is -1 unless early stopping triggered.
	ConvergedAtIteration int
	// Trace holds the per-iteration evolution (the demo's slide-bar
	// graphs).
	Trace []Iteration

	Privacy PrivacyReport
	Network NetworkCost
	Crypto  CryptoOps
	// Decrypt is the decrypt-phase slice of the run's cost.
	Decrypt DecryptPhaseCost

	// DecryptFailures counts iterations where some participant could
	// not assemble a decryption quorum (only under churn or faults).
	DecryptFailures int
	// Completed counts participants that finished their full iteration
	// schedule — the quorum-liveness measure of the fault experiments.
	Completed int
	// Elapsed is the wall-clock simulation time.
	Elapsed time.Duration

	// Stream is the per-window streaming context when this Result came
	// from Session.Advance (nil for one-shot Cluster results).
	Stream *StreamInfo
}

// Cluster runs the full Chiaroscuro protocol over the participants'
// series (one per participant, values in [0,1] — see Normalize01).
func Cluster(series [][]float64, cfg Config) (*Result, error) {
	params, err := cfg.toParams()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	var trace *core.Trace
	switch cfg.Engine {
	case "", "cycles":
		trace, err = core.Run(series, params)
	case "sharded":
		trace, err = core.RunSharded(series, params)
	case "async":
		trace, err = core.RunAsync(series, params)
	default:
		return nil, fmt.Errorf("chiaroscuro: unknown engine %q (want cycles, sharded or async)", cfg.Engine)
	}
	if err != nil {
		return nil, err
	}
	res := resultFromTrace(trace)
	res.Elapsed = time.Since(start)
	return res, nil
}

// resultFromTrace maps a core trace onto the public Result shape — the
// single translation point shared by Cluster and the streaming
// Session.Advance. Elapsed is the caller's to fill.
func resultFromTrace(trace *core.Trace) *Result {
	res := &Result{
		Centroids:            trace.FinalCentroids,
		Assignments:          trace.Assignments,
		Inertia:              trace.Inertia,
		ConvergedAtIteration: trace.ConvergedAtIteration,
		Privacy: PrivacyReport{
			EpsilonBudget: trace.Privacy.TotalEpsilon,
			EpsilonSpent:  trace.Privacy.SpentEpsilon,
			Disclosures:   trace.Privacy.Disclosures,
			GossipRelErr:  trace.Privacy.MaxGossipRelErr,
		},
		Network: NetworkCost{
			MessagesSent:    trace.NetStats.MessagesSent,
			MessagesDropped: trace.NetStats.MessagesDropped,
			BytesSent:       trace.NetStats.BytesSent,
			Cycles:          trace.CyclesRun,
			FaultDropped:    trace.NetStats.FaultDrops,
			Duplicated:      trace.NetStats.Duplicates,
			Delayed:         trace.NetStats.Delayed,
		},
		Crypto: CryptoOps{
			Encrypts:         trace.Ops.Encrypts,
			Adds:             trace.Ops.Adds,
			Halvings:         trace.Ops.Halvings,
			PartialDecrypts:  trace.Ops.PartialDecrypts,
			Combines:         trace.Ops.Combines,
			CombineCtxHits:   trace.Ops.CombineCtxHits,
			PartialCacheHits: trace.Ops.PartialCacheHits,
		},
		Decrypt: DecryptPhaseCost{
			Cycles:   trace.Phases.DecryptCycles,
			Wall:     trace.Phases.DecryptTime,
			Requests: trace.DecryptRequests,
			Bytes:    trace.DecryptBytes,
		},
		DecryptFailures: trace.DecryptFailures,
		Completed:       trace.Completed,
	}
	for _, it := range trace.Iterations {
		res.Trace = append(res.Trace, Iteration{
			Index:           it.Iteration,
			Epsilon:         it.Epsilon,
			Centroids:       it.PerturbedCentroids,
			ExactCentroids:  it.ExactCentroids,
			NoiseRMSE:       it.NoiseRMSE,
			Counts:          it.PerturbedCounts,
			InertiaEstimate: it.PerturbedInertia,
		})
	}
	return res
}

// toParams is the one-shot (Cluster) configuration path: Epsilon is the
// whole budget and the streaming fields must be unset.
func (cfg Config) toParams() (core.Params, error) {
	var p core.Params
	switch {
	case cfg.LifetimeEpsilon != 0:
		return p, errors.New("chiaroscuro: Config.LifetimeEpsilon is a streaming option — use OpenStream")
	case cfg.Windows != 0:
		return p, errors.New("chiaroscuro: Config.Windows is a streaming option — use OpenStream")
	case cfg.WarmStart:
		return p, errors.New("chiaroscuro: Config.WarmStart is a streaming option — use OpenStream")
	case cfg.BudgetStrategy != "":
		return p, errors.New("chiaroscuro: Config.BudgetStrategy is a streaming option — use OpenStream")
	case cfg.DriftThreshold != 0:
		return p, errors.New("chiaroscuro: Config.DriftThreshold is a streaming option — use OpenStream")
	}
	if cfg.Epsilon <= 0 {
		return p, errors.New("chiaroscuro: Config.Epsilon must be positive")
	}
	if cfg.Engine == "async" && (cfg.ChurnCrashProb != 0 || cfg.ChurnRejoinProb != 0) {
		// Validated here, not deep inside core.RunAsync, so a bad
		// configuration fails before any setup work with an error that
		// names the fields: churn is cycles/sharded-only (see the Config
		// field docs).
		return p, errors.New("chiaroscuro: churn (Config.ChurnCrashProb/ChurnRejoinProb) is not supported by the async engine — use the cycles or sharded engine, or model failures with Config.Faults")
	}
	p, err := cfg.baseParams()
	if err != nil {
		return p, err
	}
	p.Epsilon = cfg.Epsilon
	return p, nil
}

// baseParams maps the protocol-shape part of Config — everything shared
// by the one-shot and streaming paths — onto core.Params, leaving the
// budget (Epsilon) to the caller.
func (cfg Config) baseParams() (core.Params, error) {
	var p core.Params
	if cfg.K < 1 {
		return p, errors.New("chiaroscuro: Config.K is required")
	}
	if cfg.Workers < 0 {
		return p, fmt.Errorf("chiaroscuro: Config.Workers must be non-negative, got %d", cfg.Workers)
	}
	strategy, err := dp.StrategyByName(cfg.Strategy)
	if err != nil {
		return p, err
	}
	var sm core.SmoothingSpec
	switch cfg.Smoothing.Method {
	case "", "none":
		sm.Method = core.SmoothingNone
	case "moving-average":
		sm.Method = core.SmoothingMovingAverage
		sm.Window = cfg.Smoothing.Window
	case "exponential":
		sm.Method = core.SmoothingExponential
		sm.Alpha = cfg.Smoothing.Alpha
	default:
		return p, fmt.Errorf("chiaroscuro: unknown smoothing method %q", cfg.Smoothing.Method)
	}
	var backend core.Backend
	switch cfg.Backend {
	case "", BackendAccounted:
		backend = core.BackendPlainAccounted
	case BackendDamgardJurik:
		backend = core.BackendDamgardJurik
	default:
		return p, fmt.Errorf("chiaroscuro: unknown backend %q", cfg.Backend)
	}
	var faults *simnet.Plan
	if cfg.Faults != "" {
		faults, err = simnet.ParsePlan(cfg.Faults)
		if err != nil {
			return p, fmt.Errorf("chiaroscuro: Config.Faults: %w", err)
		}
	}
	return core.Params{
		K:                    cfg.K,
		Iterations:           cfg.Iterations,
		ConvergeThreshold:    cfg.ConvergeThreshold,
		GossipRounds:         cfg.GossipRounds,
		DecryptThreshold:     cfg.DecryptThreshold,
		Backend:              backend,
		ModulusBits:          cfg.ModulusBits,
		Degree:               cfg.Degree,
		Strategy:             strategy,
		Smoothing:            sm,
		TrackInertia:         cfg.TrackInertia,
		InertiaStopThreshold: cfg.InertiaStopThreshold,
		InitialCentroids:     cfg.InitialCentroids,
		Seed:                 cfg.Seed,
		Workers:              cfg.Workers,
		Packed:               cfg.Packed,
		MaxValue:             1,
		ChurnCrashProb:       cfg.ChurnCrashProb,
		ChurnRejoinProb:      cfg.ChurnRejoinProb,
		Faults:               faults,
	}, nil
}

// --- Baseline, search and data helpers -------------------------------------

// KMeansResult is the centralized baseline outcome.
type KMeansResult struct {
	Centroids   [][]float64
	Assignments []int
	Inertia     float64
	Iterations  int
}

// CentralizedKMeans runs the plain Lloyd's k-means the demo compares
// against, on pooled cleartext data (no privacy). When initial is nil, a
// seeded random-point init is used.
func CentralizedKMeans(series [][]float64, k, iterations int, seed int64, initial [][]float64) (*KMeansResult, error) {
	opt := kmeans.Options{K: k, MaxIter: iterations, Seed: seed}
	if initial != nil {
		opt.Init = kmeans.InitProvided
		opt.Initial = initial
	}
	r, err := kmeans.Run(series, opt)
	if err != nil {
		return nil, err
	}
	return &KMeansResult{
		Centroids:   r.Centroids,
		Assignments: r.Assignments,
		Inertia:     r.Inertia,
		Iterations:  r.Iterations,
	}, nil
}

// ProfileMatch is one result of FindClosestProfiles.
type ProfileMatch struct {
	// Profile is the centroid index.
	Profile int
	// Offset is where the query aligned best within the profile.
	Offset int
	// Distance is the Euclidean distance at the best alignment.
	Distance float64
}

// FindClosestProfiles implements the demonstration's interactive use case
// (Fig. 3 panel 6): given the published cluster profiles and a
// subsequence of an individual's own series, return the m closest
// profiles under best-alignment Euclidean distance.
func FindClosestProfiles(profiles [][]float64, query []float64, m int) ([]ProfileMatch, error) {
	ps := make([]timeseries.Series, len(profiles))
	for i, p := range profiles {
		ps[i] = timeseries.Series(p)
	}
	matches, err := timeseries.ClosestProfiles(ps, timeseries.Series(query), m)
	if err != nil {
		return nil, err
	}
	out := make([]ProfileMatch, len(matches))
	for i, mm := range matches {
		out[i] = ProfileMatch{Profile: mm.Profile, Offset: mm.Offset, Distance: mm.Distance}
	}
	return out, nil
}

// LevelInit builds k data-independent initial centroids for series
// normalized to [0,1]: constant curves at the levels (j+0.5)/k. Unlike
// sampling data points (the usual k-means init), level centroids disclose
// nothing about anyone's series, and unlike uniform random vectors they
// lie near the manifold of smooth normalized curves. Pass the result as
// Config.InitialCentroids — and as the baseline's initial centroids when
// comparing, so both systems start identically.
func LevelInit(k, dim int) [][]float64 {
	out := make([][]float64, k)
	for j := range out {
		level := (float64(j) + 0.5) / float64(k)
		c := make([]float64, dim)
		for t := range c {
			c[t] = level
		}
		out[j] = c
	}
	return out
}

// ScaleEpsilonForPopulation implements the demonstration's population
// scaling rule (Sec. III.B, point 4): when simulating a small population
// in place of the target deployment, the differential-privacy level is
// rescaled so that the "noise magnitude / population size" ratio is
// preserved. The Laplace noise has scale Δ/ε and the disclosed aggregate
// scales with the population, so simulating targetPop participants'
// noise impact with simPop participants requires
//
//	ε_sim = ε_target · targetPop / simPop.
//
// The returned value is what to pass as Config.Epsilon; the privacy
// guarantee actually enforced in the simulation is ε_sim, while the
// noise impact on quality matches a targetPop-deployment at ε_target.
func ScaleEpsilonForPopulation(epsilonTarget float64, targetPop, simPop int) (float64, error) {
	if epsilonTarget <= 0 || targetPop < 1 || simPop < 1 {
		return 0, fmt.Errorf("chiaroscuro: invalid scaling arguments (ε=%v, target=%d, sim=%d)",
			epsilonTarget, targetPop, simPop)
	}
	return epsilonTarget * float64(targetPop) / float64(simPop), nil
}

// Normalize01 rescales all series jointly into [0,1] in place (the
// bounded domain the privacy analysis requires) and returns the applied
// transform: normalized = (raw - offset) * scale.
func Normalize01(series [][]float64) (offset, scale float64, err error) {
	set := make([]timeseries.Series, len(series))
	for i := range series {
		set[i] = timeseries.Series(series[i])
	}
	n, err := timeseries.NormalizeMinMax(set)
	if err != nil {
		return 0, 0, err
	}
	return n.Offset, n.Scale, nil
}

// SyntheticCERErr generates the CER-like electricity-consumption
// workload (see internal/datasets for the substitution rationale): n
// households, dim samples per day. Returns the series, ground-truth
// archetype labels and archetype names, or an error for invalid options
// (n < 1; a dim < 2 falls back to the generator's default of 48).
func SyntheticCERErr(n, dim int, seed int64) ([][]float64, []int, []string, error) {
	d, err := datasets.CER(datasets.CEROptions{N: n, Dim: dim, Seed: seed})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("chiaroscuro: %w", err)
	}
	return d.Series, d.Labels, d.ArchetypeNames, nil
}

// SyntheticCER is SyntheticCERErr for known-good options: it panics on
// invalid ones (n < 1) instead of returning an error — convenient in
// examples and benchmarks, hostile in library code. Prefer
// SyntheticCERErr when n comes from user input.
func SyntheticCER(n, dim int, seed int64) ([][]float64, []int, []string) {
	series, labels, names, err := SyntheticCERErr(n, dim, seed)
	if err != nil {
		panic(err)
	}
	return series, labels, names
}

// SyntheticTumorGrowthErr generates the NUMED-like tumor-growth
// workload from the Claret et al. model: n patients observed over the
// given number of weeks. Returns an error for invalid options (n < 1; a
// weeks < 2 falls back to the generator's default of 20).
func SyntheticTumorGrowthErr(n, weeks int, seed int64) ([][]float64, []int, []string, error) {
	d, err := datasets.TumorGrowth(datasets.TumorOptions{N: n, Weeks: weeks, Seed: seed})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("chiaroscuro: %w", err)
	}
	return d.Series, d.Labels, d.ArchetypeNames, nil
}

// SyntheticTumorGrowth is SyntheticTumorGrowthErr for known-good
// options: it panics on invalid ones (n < 1). Prefer the Err variant
// when n comes from user input.
func SyntheticTumorGrowth(n, weeks int, seed int64) ([][]float64, []int, []string) {
	series, labels, names, err := SyntheticTumorGrowthErr(n, weeks, seed)
	if err != nil {
		panic(err)
	}
	return series, labels, names
}

// CompareToBaseline reports quality of a Chiaroscuro result against a
// centralized baseline on the same data: the inertia ratio (>= 1; 1 is
// parity), the RMSE between matched centroid sets, and the ARI between
// the two assignments.
func CompareToBaseline(res *Result, base *KMeansResult) (inertiaRatio, centroidRMSE, ari float64, err error) {
	if res == nil || base == nil {
		return 0, 0, 0, errors.New("chiaroscuro: nil results")
	}
	if base.Inertia > 0 {
		inertiaRatio = res.Inertia / base.Inertia
	} else {
		inertiaRatio = 1
	}
	centroidRMSE, err = quality.CentroidRMSE(res.Centroids, base.Centroids)
	if err != nil {
		return 0, 0, 0, err
	}
	ari, err = quality.ARI(res.Assignments, base.Assignments)
	if err != nil {
		return 0, 0, 0, err
	}
	return inertiaRatio, centroidRMSE, ari, nil
}
