package chiaroscuro_test

import (
	"errors"
	"math"
	"testing"

	"chiaroscuro"
)

// streamData generates a CER-like population long enough for the whole
// stream and splits it into the initial window plus per-window slides.
func streamData(t *testing.T, n, dim, windows, slide int) (initial [][]float64, steps [][][]float64) {
	t.Helper()
	total := dim + windows*slide
	series, _, _, err := chiaroscuro.SyntheticCERErr(n, total, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		t.Fatal(err)
	}
	initial = make([][]float64, n)
	for i := range initial {
		initial[i] = append([]float64(nil), series[i][:dim]...)
	}
	steps = make([][][]float64, windows)
	for w := range steps {
		steps[w] = make([][]float64, n)
		for i := range steps[w] {
			steps[w][i] = append([]float64(nil), series[i][dim+w*slide:dim+(w+1)*slide]...)
		}
	}
	return initial, steps
}

// TestOpenStreamEndToEnd drives a warm-started stream through four
// windows and checks the public surface: per-window stream info, the
// longitudinal budget position, and determinism (a twin session
// discloses bit-identical centroids).
func TestOpenStreamEndToEnd(t *testing.T) {
	const windows, slide = 4, 2
	initial, steps := streamData(t, 40, 8, windows, slide)
	cfg := chiaroscuro.Config{
		K:               3,
		LifetimeEpsilon: 80,
		Windows:         windows,
		WarmStart:       true,
		Seed:            3,
	}

	run := func() []*chiaroscuro.Result {
		t.Helper()
		sess, err := chiaroscuro.OpenStream(initial, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		var out []*chiaroscuro.Result
		for w := 0; w < windows; w++ {
			var pts [][]float64
			if w > 0 {
				pts = steps[w-1]
			}
			res, err := sess.Advance(pts)
			if err != nil {
				t.Fatalf("window %d: %v", w, err)
			}
			out = append(out, res)
		}
		if got := sess.Window(); got != windows {
			t.Fatalf("Window() = %d, want %d", got, windows)
		}
		if b := sess.Budget(); b.Windows != windows || b.Remaining > 80*1e-9 {
			t.Fatalf("final budget = %+v", b)
		}
		return out
	}

	results := run()
	for w, res := range results {
		if res.Stream == nil {
			t.Fatalf("window %d: Result.Stream is nil", w)
		}
		st := res.Stream
		if st.Window != w || st.Skipped {
			t.Fatalf("window %d: stream info %+v", w, st)
		}
		if got, want := st.WarmStarted, w > 0; got != want {
			t.Fatalf("window %d: WarmStarted = %v, want %v", w, got, want)
		}
		if math.Abs(st.EpsilonDrawn-20) > 1e-9 {
			t.Fatalf("window %d drew %v, want 20 (uniform over 4)", w, st.EpsilonDrawn)
		}
		if w == 0 && !math.IsNaN(st.Drift) {
			t.Fatalf("window 0 drift = %v, want NaN", st.Drift)
		}
		if w > 0 && (math.IsNaN(st.Drift) || st.Drift < 0) {
			t.Fatalf("window %d drift = %v", w, st.Drift)
		}
		if len(res.Centroids) != cfg.K || len(res.Trace) == 0 {
			t.Fatalf("window %d: truncated result", w)
		}
		if res.Privacy.EpsilonBudget != st.EpsilonDrawn {
			t.Fatalf("window %d: per-window budget %v vs drawn %v", w, res.Privacy.EpsilonBudget, st.EpsilonDrawn)
		}
	}
	// One-shot results carry no stream info.
	oneShot, err := chiaroscuro.Cluster(initial, chiaroscuro.Config{K: 3, Epsilon: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if oneShot.Stream != nil {
		t.Fatal("one-shot Result.Stream must be nil")
	}

	twin := run()
	for w := range results {
		for j := range results[w].Centroids {
			for tt := range results[w].Centroids[j] {
				a := math.Float64bits(results[w].Centroids[j][tt])
				b := math.Float64bits(twin[w].Centroids[j][tt])
				if a != b {
					t.Fatalf("window %d: twin session diverged at centroid %d[%d]", w, j, tt)
				}
			}
		}
	}
}

// TestStreamSkippedWindowShape pins what a skipped window's Result
// looks like: previous centroids carried forward, stream info marked,
// protocol fields empty.
func TestStreamSkippedWindowShape(t *testing.T) {
	const windows, slide = 3, 1
	initial, steps := streamData(t, 24, 6, windows, slide)
	sess, err := chiaroscuro.OpenStream(initial, chiaroscuro.Config{
		K:               2,
		LifetimeEpsilon: 120,
		Windows:         windows,
		WarmStart:       true,
		BudgetStrategy:  "threshold",
		DriftThreshold:  10, // generous: skip as soon as a drift signal exists
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Windows 0 and 1 run (the drift signal needs two disclosures);
	// window 2 skips under the generous bound.
	var prev *chiaroscuro.Result
	for w := 0; w < 2; w++ {
		var pts [][]float64
		if w > 0 {
			pts = steps[w-1]
		}
		prev, err = sess.Advance(pts)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		if prev.Stream.Skipped {
			t.Fatalf("window %d skipped unexpectedly", w)
		}
	}
	res, err := sess.Advance(steps[1])
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stream
	// A skipped window runs nothing — so nothing was warm-started.
	if !st.Skipped || st.EpsilonDrawn != 0 || st.WarmStarted {
		t.Fatalf("skipped stream info = %+v", st)
	}
	if len(res.Trace) != 0 || res.Network.MessagesSent != 0 || !math.IsNaN(res.Inertia) {
		t.Fatalf("skipped window leaked protocol fields: %+v", res)
	}
	for j := range res.Centroids {
		for tt := range res.Centroids[j] {
			if res.Centroids[j][tt] != prev.Centroids[j][tt] {
				t.Fatal("skipped window must carry the previous centroids")
			}
		}
	}
	if b := sess.Budget(); b.Skips != 1 || b.Windows != 2 {
		t.Fatalf("budget after skip = %+v", b)
	}
}

// TestStreamBudgetExhaustion checks the public hard-refusal path.
func TestStreamBudgetExhaustion(t *testing.T) {
	initial, steps := streamData(t, 24, 6, 2, 1)
	sess, err := chiaroscuro.OpenStream(initial, chiaroscuro.Config{
		K:               2,
		LifetimeEpsilon: 10,
		Windows:         2,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for w := 0; w < 2; w++ {
		var pts [][]float64
		if w > 0 {
			pts = steps[w-1]
		}
		if _, err := sess.Advance(pts); err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
	}
	if _, err := sess.Advance(steps[1]); !errors.Is(err, chiaroscuro.ErrBudgetExhausted) {
		t.Fatalf("past-horizon advance: err = %v, want ErrBudgetExhausted", err)
	}
}

// blobStream generates a well-separated three-blob population with a
// slow sinusoidal drift — the regime where early stopping is crisp
// enough to compare warm and cold iteration counts deterministically.
func blobStream(n, dim, windows, slide int) (initial [][]float64, steps [][][]float64) {
	total := dim + windows*slide
	full := make([][]float64, n)
	for i := range full {
		base := 0.12 + 0.72*float64(i%3)/3
		s := make([]float64, total)
		for t := range s {
			v := base + 0.05*math.Sin(2*math.Pi*(float64(t)/float64(total)+float64(i%5)/5)) +
				0.015*float64((i*7+t*3)%5-2)/5
			s[t] = math.Min(1, math.Max(0, v))
		}
		full[i] = s
	}
	initial = make([][]float64, n)
	for i := range initial {
		initial[i] = append([]float64(nil), full[i][:dim]...)
	}
	steps = make([][][]float64, windows)
	for w := range steps {
		steps[w] = make([][]float64, n)
		for i := range steps[w] {
			steps[w][i] = append([]float64(nil), full[i][dim+w*slide:dim+(w+1)*slide]...)
		}
	}
	return initial, steps
}

// TestStreamWarmStartConvergesFaster is the acceptance gate in miniature
// (BenchmarkStreamRecluster measures it at scale): over a drifting
// stream with early stopping, warm-starting every window from the
// previous disclosure spends strictly fewer total k-means iterations
// than cold restarts, at comparable quality. Everything is seeded, so
// the iteration counts are exact, not statistical.
func TestStreamWarmStartConvergesFaster(t *testing.T) {
	const windows, slide = 6, 2
	initial, steps := blobStream(60, 8, windows, slide)

	drive := func(warm bool) (totalIters int, meanInertia float64) {
		t.Helper()
		sess, err := chiaroscuro.OpenStream(initial, chiaroscuro.Config{
			K:                 3,
			Iterations:        10,
			ConvergeThreshold: 0.08,
			LifetimeEpsilon:   2400, // ample: noise far below the stop threshold
			Windows:           windows,
			WarmStart:         warm,
			Seed:              9,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		for w := 0; w < windows; w++ {
			var pts [][]float64
			if w > 0 {
				pts = steps[w-1]
			}
			res, err := sess.Advance(pts)
			if err != nil {
				t.Fatalf("window %d: %v", w, err)
			}
			totalIters += len(res.Trace)
			meanInertia += res.Inertia / windows
		}
		return totalIters, meanInertia
	}

	warmIters, warmInertia := drive(true)
	coldIters, coldInertia := drive(false)
	t.Logf("warm: %d iterations (mean inertia %.4f); cold: %d iterations (mean inertia %.4f)",
		warmIters, warmInertia, coldIters, coldInertia)
	if warmIters >= coldIters {
		t.Fatalf("warm start used %d total iterations, cold %d — want strictly fewer", warmIters, coldIters)
	}
	if warmInertia > coldInertia*1.25 {
		t.Fatalf("warm-start quality regressed: mean inertia %.4f vs cold %.4f", warmInertia, coldInertia)
	}
}

// BenchmarkStreamRecluster measures the streaming tentpole's payoff at
// bench scale: N=10k participants over 8 windows, warm-start vs cold
// restarts under early stopping. The iters/stream metric is the total
// k-means iterations actually run (fewer = less budget spread, less
// gossip, less wall-clock); run with -benchtime=1x for a single pass:
//
//	go test -bench StreamRecluster -benchtime=1x .
func BenchmarkStreamRecluster(b *testing.B) {
	const n, dim, windows, slide = 10000, 8, 8, 2
	initial, steps := blobStream(n, dim, windows, slide)
	for _, mode := range []struct {
		name string
		warm bool
	}{{"warm", true}, {"cold", false}} {
		b.Run(mode.name, func(b *testing.B) {
			totalIters := 0
			inertia := 0.0
			for i := 0; i < b.N; i++ {
				sess, err := chiaroscuro.OpenStream(initial, chiaroscuro.Config{
					K:                 3,
					Iterations:        10,
					ConvergeThreshold: 0.08,
					LifetimeEpsilon:   4000,
					Windows:           windows,
					WarmStart:         mode.warm,
					Engine:            "sharded",
					GossipRounds:      10,
					DecryptThreshold:  8,
					Seed:              9,
				})
				if err != nil {
					b.Fatal(err)
				}
				for w := 0; w < windows; w++ {
					var pts [][]float64
					if w > 0 {
						pts = steps[w-1]
					}
					res, err := sess.Advance(pts)
					if err != nil {
						sess.Close()
						b.Fatalf("window %d: %v", w, err)
					}
					totalIters += len(res.Trace)
					inertia += res.Inertia / windows
				}
				sess.Close()
			}
			b.ReportMetric(float64(totalIters)/float64(b.N), "iters/stream")
			b.ReportMetric(inertia/float64(b.N), "inertia")
		})
	}
}
