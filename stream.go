package chiaroscuro

// stream.go is the public face of the streaming tentpole: a Session is
// a long-lived clustering stream over an evolving population, re-using
// one set of protocol resources (series arena, cipher suite, key
// material) across many windows while a longitudinal privacy ledger
// meters every disclosure against a lifetime budget.
//
// Quick start:
//
//	series, _, _ := chiaroscuro.SyntheticCER(500, 24, 42)
//	chiaroscuro.Normalize01(series)
//	sess, err := chiaroscuro.OpenStream(series, chiaroscuro.Config{
//		K:               5,
//		LifetimeEpsilon: 8,
//		Windows:         8,
//		WarmStart:       true,
//	})
//	defer sess.Close()
//	res, err := sess.Advance(nil)          // window 0: the initial data
//	res, err = sess.Advance(newSamples)    // window 1: slide + re-cluster
//
// Each Advance slides every participant's series (oldest samples out,
// new samples in), asks the budget strategy for this window's epsilon,
// and runs one full protocol round — or skips it, carrying the previous
// disclosure forward, when the strategy decides the centroids have not
// drifted enough to be worth the budget.

import (
	"errors"
	"fmt"
	"math"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/dp"
)

// BudgetReport is the longitudinal privacy position of a stream.
type BudgetReport struct {
	// LifetimeEpsilon is the stream's total budget; SpentEpsilon the
	// consumed part; Remaining what future windows may still draw.
	LifetimeEpsilon float64
	SpentEpsilon    float64
	Remaining       float64
	// Windows counts the windows that actually ran (disclosed);
	// Skips the windows the budget strategy elected to skip.
	Windows int
	Skips   int
}

// StreamInfo is the per-window streaming context attached to a
// Result produced by Session.Advance.
type StreamInfo struct {
	// Window is the 0-based window index.
	Window int
	// EpsilonDrawn is the budget this window actually consumed (0 when
	// skipped; already settled down for early convergence).
	EpsilonDrawn float64
	// Skipped marks a window the budget strategy declined to
	// re-cluster: Centroids carry the previous window's disclosure and
	// the protocol fields (Trace, Network, Crypto, …) are zero.
	Skipped bool
	// WarmStarted reports whether this window started from the
	// previous window's disclosed centroids.
	WarmStarted bool
	// Drift is the maximum centroid displacement between this window's
	// disclosure and the previous one (NaN for the first window).
	Drift float64
	// Budget is the stream's budget position after this window.
	Budget BudgetReport
}

// Session is a streaming clustering session opened by OpenStream.
// Sessions are not safe for concurrent use.
type Session struct {
	inner *core.RunSession
}

// ErrBudgetExhausted is returned by Session.Advance when the lifetime
// privacy budget cannot cover another window. It is a hard refusal: the
// stream has disclosed everything its budget allows.
var ErrBudgetExhausted = dp.ErrBudgetExhausted

// OpenStream opens a streaming clustering session over the
// participants' series (one per participant, values in [0,1] — see
// Normalize01). The streaming fields of Config (LifetimeEpsilon,
// Windows, WarmStart, BudgetStrategy, DriftThreshold) configure the
// stream; Config.Epsilon must be zero — windows draw their epsilon from
// the lifetime budget. Close the session to release its resources.
func OpenStream(series [][]float64, cfg Config) (*Session, error) {
	sp, err := cfg.streamParams()
	if err != nil {
		return nil, err
	}
	inner, err := core.NewRunSession(series, sp)
	if err != nil {
		return nil, err
	}
	return &Session{inner: inner}, nil
}

// streamParams is the streaming configuration path: the lifetime budget
// replaces Epsilon, and the session-incompatible features are refused.
func (cfg Config) streamParams() (core.SessionParams, error) {
	var sp core.SessionParams
	switch {
	case cfg.Epsilon != 0:
		return sp, errors.New("chiaroscuro: streaming draws each window's epsilon from Config.LifetimeEpsilon — leave Config.Epsilon zero")
	case cfg.LifetimeEpsilon <= 0:
		return sp, errors.New("chiaroscuro: Config.LifetimeEpsilon must be positive for streaming")
	case cfg.Windows < 0:
		return sp, fmt.Errorf("chiaroscuro: Config.Windows must be non-negative, got %d", cfg.Windows)
	case cfg.DriftThreshold < 0:
		return sp, fmt.Errorf("chiaroscuro: Config.DriftThreshold must be non-negative, got %v", cfg.DriftThreshold)
	case cfg.DriftThreshold != 0 && cfg.BudgetStrategy != "threshold":
		return sp, errors.New("chiaroscuro: Config.DriftThreshold applies to the \"threshold\" budget strategy only")
	case cfg.Faults != "":
		return sp, errors.New("chiaroscuro: Config.Faults is not supported in streaming sessions yet")
	case cfg.ChurnCrashProb != 0 || cfg.ChurnRejoinProb != 0:
		return sp, errors.New("chiaroscuro: churn is not supported in streaming sessions yet")
	}
	var engine core.SessionEngine
	switch cfg.Engine {
	case "", "cycles":
		engine = core.SessionSequential
	case "sharded":
		engine = core.SessionSharded
	case "async":
		return sp, errors.New("chiaroscuro: streaming requires a deterministic engine — use \"cycles\" or \"sharded\"")
	default:
		return sp, fmt.Errorf("chiaroscuro: unknown engine %q (want cycles, sharded or async)", cfg.Engine)
	}
	spend, err := dp.SpendStrategyByName(cfg.BudgetStrategy, cfg.DriftThreshold)
	if err != nil {
		return sp, err
	}
	base, err := cfg.baseParams()
	if err != nil {
		return sp, err
	}
	return core.SessionParams{
		Base:            base,
		LifetimeEpsilon: cfg.LifetimeEpsilon,
		Windows:         cfg.Windows,
		Spend:           spend,
		WarmStart:       cfg.WarmStart,
		Engine:          engine,
	}, nil
}

// Advance runs the next window of the stream. newPoints slides every
// participant's series first — oldest samples out, the new ones in —
// and may be nil to re-cluster the current window (always nil for the
// very first window). The returned Result carries the usual one-shot
// fields plus Result.Stream; for a skipped window only Centroids and
// Stream are populated. Once the lifetime budget is exhausted, Advance
// returns ErrBudgetExhausted — permanently.
func (s *Session) Advance(newPoints [][]float64) (*Result, error) {
	start := time.Now()
	wr, err := s.inner.Advance(newPoints)
	if err != nil {
		return nil, err
	}
	info := &StreamInfo{
		Window:       wr.Window,
		EpsilonDrawn: wr.EpsilonDrawn,
		Skipped:      wr.Skipped,
		WarmStarted:  wr.WarmStarted,
		Drift:        wr.Drift,
		Budget: BudgetReport{
			LifetimeEpsilon: wr.Ledger.LifetimeEpsilon,
			SpentEpsilon:    wr.Ledger.SpentEpsilon,
			Remaining:       wr.Ledger.Remaining,
			Windows:         wr.Ledger.Windows,
			Skips:           wr.Ledger.Skips,
		},
	}
	if wr.Skipped {
		return &Result{
			Centroids:            wr.Centroids,
			ConvergedAtIteration: -1,
			Inertia:              math.NaN(),
			Elapsed:              time.Since(start),
			Stream:               info,
		}, nil
	}
	// The window consumed what the ledger settled, not the upfront
	// reservation.
	info.EpsilonDrawn = wr.Trace.Privacy.SpentEpsilon
	res := resultFromTrace(wr.Trace)
	res.Elapsed = time.Since(start)
	res.Stream = info
	return res, nil
}

// Window returns the index of the next window Advance would run.
func (s *Session) Window() int { return s.inner.Window() }

// Budget returns the stream's current longitudinal budget position.
func (s *Session) Budget() BudgetReport {
	rep := s.inner.Ledger().Report()
	return BudgetReport{
		LifetimeEpsilon: rep.LifetimeEpsilon,
		SpentEpsilon:    rep.SpentEpsilon,
		Remaining:       rep.Remaining,
		Windows:         rep.Windows,
		Skips:           rep.Skips,
	}
}

// Close releases the session's arenas and key material. Idempotent.
func (s *Session) Close() { s.inner.Close() }
