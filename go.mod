module chiaroscuro

go 1.24
