package chiaroscuro

import (
	"math"
	"strings"
	"testing"
)

func TestClusterEndToEndCER(t *testing.T) {
	series, labels, names := SyntheticCER(400, 12, 42)
	if len(series) != 400 || len(labels) != 400 || len(names) == 0 {
		t.Fatal("generator shape")
	}
	if _, _, err := Normalize01(series); err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(series, Config{
		K:          5,
		Epsilon:    4,
		Iterations: 5,
		Seed:       1,
		Smoothing:  Smoothing{Method: "moving-average", Window: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 5 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
	if len(res.Assignments) != 400 {
		t.Fatalf("assignments = %d", len(res.Assignments))
	}
	if len(res.Trace) != 5 {
		t.Fatalf("trace length = %d", len(res.Trace))
	}
	if res.Privacy.EpsilonSpent <= 0 || res.Privacy.EpsilonSpent > 4+1e-9 {
		t.Fatalf("privacy report: %+v", res.Privacy)
	}
	if res.Network.MessagesSent == 0 || res.Network.BytesSent == 0 {
		t.Fatalf("network report: %+v", res.Network)
	}
	if res.Crypto.Encrypts == 0 {
		t.Fatalf("crypto report: %+v", res.Crypto)
	}

	// Quality vs centralized baseline on the same init must be sane.
	base, err := CentralizedKMeans(series, 5, 20, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ratio, rmse, ari, err := CompareToBaseline(res, base)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 0.5 || ratio > 5 {
		t.Fatalf("inertia ratio = %v, implausible", ratio)
	}
	if rmse < 0 || math.IsNaN(rmse) {
		t.Fatalf("rmse = %v", rmse)
	}
	if ari < -0.2 || ari > 1 {
		t.Fatalf("ari = %v", ari)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	series, _, _ := SyntheticCER(20, 8, 1)
	_, _, _ = Normalize01(series)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"missing K", Config{Epsilon: 1}},
		{"missing epsilon", Config{K: 2}},
		{"bad strategy", Config{K: 2, Epsilon: 1, Strategy: "nope"}},
		{"bad smoothing", Config{K: 2, Epsilon: 1, Smoothing: Smoothing{Method: "fft"}}},
		{"bad backend", Config{K: 2, Epsilon: 1, Backend: "rot13"}},
	}
	for _, tc := range cases {
		if _, err := Cluster(series, tc.cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestClusterRejectsUnnormalizedData(t *testing.T) {
	series, _, _ := SyntheticCER(30, 8, 2) // raw kW values, some > 1
	_, err := Cluster(series, Config{K: 2, Epsilon: 1})
	if err == nil || !strings.Contains(err.Error(), "normalize") {
		t.Fatalf("err = %v, want normalization hint", err)
	}
}

func TestClusterRealCryptoSmall(t *testing.T) {
	series, _, _ := SyntheticTumorGrowth(14, 10, 3)
	_, _, _ = Normalize01(series)
	res, err := Cluster(series, Config{
		K: 2, Epsilon: 50, Iterations: 2, Seed: 5,
		Backend: BackendDamgardJurik, ModulusBits: 128,
		DecryptThreshold: 4, GossipRounds: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crypto.PartialDecrypts == 0 || res.Crypto.Combines == 0 {
		t.Fatalf("no threshold decryptions recorded: %+v", res.Crypto)
	}
}

func TestStrategiesAllAccepted(t *testing.T) {
	series, _, _ := SyntheticCER(60, 6, 4)
	_, _, _ = Normalize01(series)
	for _, s := range []string{"", "uniform", "geo-increasing", "geo-decreasing", "final-boost"} {
		if _, err := Cluster(series, Config{K: 2, Epsilon: 2, Iterations: 2, Seed: 1, Strategy: s, GossipRounds: 8}); err != nil {
			t.Errorf("strategy %q: %v", s, err)
		}
	}
}

func TestFindClosestProfiles(t *testing.T) {
	profiles := [][]float64{
		{0, 0, 0, 0, 0},
		{0, 1, 2, 1, 0},
		{5, 5, 5, 5, 5},
	}
	matches, err := FindClosestProfiles(profiles, []float64{1, 2, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 || matches[0].Profile != 1 || matches[0].Distance != 0 || matches[0].Offset != 1 {
		t.Fatalf("matches = %+v", matches)
	}
	if _, err := FindClosestProfiles(nil, []float64{1}, 1); err == nil {
		t.Fatal("empty profiles should error")
	}
}

func TestNormalize01RoundTrip(t *testing.T) {
	series := [][]float64{{10, 20}, {30, 40}}
	offset, scale, err := Normalize01(series)
	if err != nil {
		t.Fatal(err)
	}
	if offset != 10 || math.Abs(scale-1.0/30) > 1e-12 {
		t.Fatalf("offset=%v scale=%v", offset, scale)
	}
	if series[0][0] != 0 || series[1][1] != 1 {
		t.Fatalf("normalized = %v", series)
	}
	if _, _, err := Normalize01(nil); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestCentralizedKMeansProvidedInit(t *testing.T) {
	series := [][]float64{{0}, {0.1}, {0.9}, {1}}
	init := [][]float64{{0.05}, {0.95}}
	res, err := CentralizedKMeans(series, 2, 10, 1, init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[0] != res.Assignments[1] || res.Assignments[2] != res.Assignments[3] {
		t.Fatalf("assignments = %v", res.Assignments)
	}
	if res.Assignments[0] == res.Assignments[2] {
		t.Fatal("clusters merged")
	}
}

func TestCompareToBaselineNil(t *testing.T) {
	if _, _, _, err := CompareToBaseline(nil, nil); err == nil {
		t.Fatal("nil inputs should error")
	}
}

func TestConvergedRunReportedInResult(t *testing.T) {
	series, _, _ := SyntheticCER(150, 8, 9)
	_, _, _ = Normalize01(series)
	res, err := Cluster(series, Config{
		K: 3, Epsilon: 2000, Iterations: 12, Seed: 2,
		ConvergeThreshold: 0.05, GossipRounds: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergedAtIteration < 0 {
		t.Skip("did not converge early on this seed — acceptable, covered in core tests")
	}
	if len(res.Trace) >= 12 {
		t.Fatalf("converged but trace has %d entries", len(res.Trace))
	}
}

func TestSyntheticGeneratorsDisjointSeeds(t *testing.T) {
	a, _, _ := SyntheticTumorGrowth(10, 12, 1)
	b, _, _ := SyntheticTumorGrowth(10, 12, 2)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical tumor data")
	}
}

func TestClusterAsyncEngine(t *testing.T) {
	series, _, _ := SyntheticCER(60, 8, 5)
	_, _, _ = Normalize01(series)
	res, err := Cluster(series, Config{
		K: 3, Epsilon: 500, Iterations: 3, Seed: 2,
		Engine: "async", GossipRounds: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 || res.Network.MessagesSent == 0 {
		t.Fatalf("async engine result: %d centroids, %d messages",
			len(res.Centroids), res.Network.MessagesSent)
	}
	if _, err := Cluster(series, Config{K: 2, Epsilon: 1, Engine: "quantum"}); err == nil {
		t.Fatal("unknown engine should error")
	}
}

func TestScaleEpsilonForPopulation(t *testing.T) {
	eps, err := ScaleEpsilonForPopulation(2, 1000000, 500)
	if err != nil || eps != 4000 {
		t.Fatalf("eps = %v, err = %v", eps, err)
	}
	// Identity when target == sim.
	eps, err = ScaleEpsilonForPopulation(1.5, 300, 300)
	if err != nil || eps != 1.5 {
		t.Fatalf("identity scaling = %v", eps)
	}
	if _, err := ScaleEpsilonForPopulation(0, 10, 10); err == nil {
		t.Fatal("zero epsilon should error")
	}
	if _, err := ScaleEpsilonForPopulation(1, 0, 10); err == nil {
		t.Fatal("zero target population should error")
	}
	if _, err := ScaleEpsilonForPopulation(1, 10, 0); err == nil {
		t.Fatal("zero sim population should error")
	}
}

func TestLevelInitPublicAPI(t *testing.T) {
	init := LevelInit(2, 4)
	if len(init) != 2 || len(init[0]) != 4 {
		t.Fatalf("shape %v", init)
	}
	if init[0][0] != 0.25 || init[1][3] != 0.75 {
		t.Fatalf("levels %v", init)
	}
}

func TestTrackInertiaPublicAPI(t *testing.T) {
	series, _, _ := SyntheticCER(80, 8, 3)
	_, _, _ = Normalize01(series)
	res, err := Cluster(series, Config{
		K: 3, Epsilon: 2000, Iterations: 6, Seed: 1,
		TrackInertia: true, InertiaStopThreshold: 0.03, GossipRounds: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Trace[len(res.Trace)-1]
	if math.IsNaN(last.InertiaEstimate) {
		t.Fatal("no inertia estimate in public trace")
	}
}

// TestClusterWithFaultScenario drives the public fault-injection
// surface: a scenario spec conditions the network and schedules node
// faults, the run survives, the fault counters surface in the result,
// and an identical re-run reproduces the identical disclosure.
func TestClusterWithFaultScenario(t *testing.T) {
	series, _, _ := SyntheticCER(80, 12, 7)
	if _, _, err := Normalize01(series); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		K: 3, Epsilon: 20, Iterations: 3, Seed: 7,
		Faults: "drop=0.1;dup=0.05;delay=0.2x3;outage@4+6=1,2:reset;lag@3+5=3;garble=4;malform=5",
	}
	res, err := Cluster(series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Network.FaultDropped == 0 || res.Network.Duplicated == 0 || res.Network.Delayed == 0 {
		t.Fatalf("scenario injected nothing: %+v", res.Network)
	}
	if res.Completed == 0 || res.Completed > len(series) {
		t.Fatalf("implausible liveness %d/%d", res.Completed, len(series))
	}
	// Same spec + seed on the sharded engine: identical disclosure.
	cfg.Engine = "sharded"
	cfg.Workers = 3
	res2, err := Cluster(series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := range res.Centroids {
		for tt := range res.Centroids[j] {
			if res.Centroids[j][tt] != res2.Centroids[j][tt] {
				t.Fatalf("faulted run not reproducible across engines at centroid %d[%d]", j, tt)
			}
		}
	}
}

// TestClusterFaultSpecValidation: malformed or out-of-population specs
// fail fast with a parse/validation error.
func TestClusterFaultSpecValidation(t *testing.T) {
	series, _, _ := SyntheticCER(20, 8, 1)
	if _, _, err := Normalize01(series); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"nonsense", "drop=2", "crash@1=999"} {
		cfg := Config{K: 2, Epsilon: 5, Iterations: 2, Seed: 1, Faults: spec}
		if _, err := Cluster(series, cfg); err == nil {
			t.Errorf("spec %q: expected error", spec)
		}
	}
}
