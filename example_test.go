package chiaroscuro_test

import (
	"fmt"
	"log"

	"chiaroscuro"
)

// ExampleCluster is the library quick start: generate a synthetic
// electricity-consumption workload, normalize it into the bounded domain
// the privacy analysis requires, and run the full privacy-preserving
// clustering protocol on the simulated network.
func ExampleCluster() {
	series, _, _ := chiaroscuro.SyntheticCER(300, 24, 42)
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		log.Fatal(err)
	}
	res, err := chiaroscuro.Cluster(series, chiaroscuro.Config{
		K:          4,
		Epsilon:    5,
		Iterations: 4,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiles disclosed: %d\n", len(res.Centroids))
	fmt.Printf("participants assigned: %d\n", len(res.Assignments))
	fmt.Printf("privacy disclosures: %d (budget fully spent: %v)\n",
		res.Privacy.Disclosures, res.Privacy.EpsilonSpent == res.Privacy.EpsilonBudget)
	// Output:
	// profiles disclosed: 4
	// participants assigned: 300
	// privacy disclosures: 4 (budget fully spent: true)
}

// ExampleCluster_shardedEngine shows the deterministic parallel engine:
// Engine "sharded" partitions the participants across Workers shard
// workers and merges their message queues through a deterministic
// reduction, so the whole trace — every disclosed centroid of every
// iteration — is bit-identical to the sequential "cycles" engine, at any
// worker count. Large reproducible experiments should use it: same
// results, wall-clock divided by the available cores.
func ExampleCluster_shardedEngine() {
	series, _, _ := chiaroscuro.SyntheticCER(300, 24, 42)
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		log.Fatal(err)
	}
	cfg := chiaroscuro.Config{K: 4, Epsilon: 5, Iterations: 4, Seed: 42}

	sequential, err := chiaroscuro.Cluster(series, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Engine = "sharded"
	cfg.Workers = 8
	sharded, err := chiaroscuro.Cluster(series, cfg)
	if err != nil {
		log.Fatal(err)
	}

	identical := true
	for j := range sequential.Centroids {
		for t := range sequential.Centroids[j] {
			if sequential.Centroids[j][t] != sharded.Centroids[j][t] {
				identical = false
			}
		}
	}
	fmt.Printf("engines: cycles vs sharded (8 workers)\n")
	fmt.Printf("final centroids bit-identical: %v\n", identical)
	fmt.Printf("same message count: %v\n",
		sequential.Network.MessagesSent == sharded.Network.MessagesSent)
	// Output:
	// engines: cycles vs sharded (8 workers)
	// final centroids bit-identical: true
	// same message count: true
}
