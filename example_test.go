package chiaroscuro_test

import (
	"fmt"
	"log"

	"chiaroscuro"
)

// ExampleCluster is the library quick start: generate a synthetic
// electricity-consumption workload, normalize it into the bounded domain
// the privacy analysis requires, and run the full privacy-preserving
// clustering protocol on the simulated network.
func ExampleCluster() {
	series, _, _ := chiaroscuro.SyntheticCER(300, 24, 42)
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		log.Fatal(err)
	}
	res, err := chiaroscuro.Cluster(series, chiaroscuro.Config{
		K:          4,
		Epsilon:    5,
		Iterations: 4,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiles disclosed: %d\n", len(res.Centroids))
	fmt.Printf("participants assigned: %d\n", len(res.Assignments))
	fmt.Printf("privacy disclosures: %d (budget fully spent: %v)\n",
		res.Privacy.Disclosures, res.Privacy.EpsilonSpent == res.Privacy.EpsilonBudget)
	// Output:
	// profiles disclosed: 4
	// participants assigned: 300
	// privacy disclosures: 4 (budget fully spent: true)
}

// ExampleCluster_damgardJurikBackend runs the protocol with real
// threshold Damgård–Jurik encryption instead of the accounted plaintext
// backend: every aggregate is genuinely encrypted, gossiped, and opened
// by collaborative decryption (4 partial decryptions here). The
// homomorphic arithmetic runs on the package's precomputed fast paths
// (fixed-base encryption, CRT partial decryption, pooled
// rerandomization — see docs/CRYPTO.md), which is what makes even this
// small end-to-end run quick. Key sizing: 128-bit fixture modulus for
// example speed; docs/CRYPTO.md and the README discuss the
// Backend/ModulusBits/Degree trade-offs for real use.
func ExampleCluster_damgardJurikBackend() {
	series, _, _ := chiaroscuro.SyntheticTumorGrowth(16, 10, 1)
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		log.Fatal(err)
	}
	res, err := chiaroscuro.Cluster(series, chiaroscuro.Config{
		K: 2, Epsilon: 100, Iterations: 2, Seed: 7,
		Backend:     chiaroscuro.BackendDamgardJurik,
		ModulusBits: 128, Degree: 1,
		DecryptThreshold: 4, GossipRounds: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiles disclosed: %d\n", len(res.Centroids))
	fmt.Printf("participants assigned: %d\n", len(res.Assignments))
	fmt.Printf("real encryptions happened: %v\n", res.Crypto.Encrypts > 0)
	fmt.Printf("collaborative decryptions happened: %v\n", res.Crypto.Combines > 0)
	// Output:
	// profiles disclosed: 2
	// participants assigned: 16
	// real encryptions happened: true
	// collaborative decryptions happened: true
}

// ExampleCluster_shardedEngine shows the deterministic parallel engine:
// Engine "sharded" partitions the participants across Workers shard
// workers and merges their message queues through a deterministic
// reduction, so the whole trace — every disclosed centroid of every
// iteration — is bit-identical to the sequential "cycles" engine, at any
// worker count. Large reproducible experiments should use it: same
// results, wall-clock divided by the available cores.
func ExampleCluster_shardedEngine() {
	series, _, _ := chiaroscuro.SyntheticCER(300, 24, 42)
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		log.Fatal(err)
	}
	cfg := chiaroscuro.Config{K: 4, Epsilon: 5, Iterations: 4, Seed: 42}

	sequential, err := chiaroscuro.Cluster(series, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Engine = "sharded"
	cfg.Workers = 8
	sharded, err := chiaroscuro.Cluster(series, cfg)
	if err != nil {
		log.Fatal(err)
	}

	identical := true
	for j := range sequential.Centroids {
		for t := range sequential.Centroids[j] {
			if sequential.Centroids[j][t] != sharded.Centroids[j][t] {
				identical = false
			}
		}
	}
	fmt.Printf("engines: cycles vs sharded (8 workers)\n")
	fmt.Printf("final centroids bit-identical: %v\n", identical)
	fmt.Printf("same message count: %v\n",
		sequential.Network.MessagesSent == sharded.Network.MessagesSent)
	// Output:
	// engines: cycles vs sharded (8 workers)
	// final centroids bit-identical: true
	// same message count: true
}
