// Benchmarks regenerating every figure and claim of the demonstration
// paper (DESIGN.md §3 maps each to its experiment). Experiment benches
// run the corresponding internal/experiments harness at Quick scale; the
// full tables in EXPERIMENTS.md come from cmd/expdriver.
//
//	go test -bench=. -benchmem
package chiaroscuro_test

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"testing"

	"chiaroscuro"
	"chiaroscuro/internal/benchcfg"
	"chiaroscuro/internal/crypto/damgardjurik"
	"chiaroscuro/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	run, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := run(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Panel4CentroidEvolution regenerates E1 (Fig. 3 panel 4):
// the per-iteration evolution of sampled participants' closest centroid.
func BenchmarkFig3Panel4CentroidEvolution(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkFig3Panel5NoiseImpact regenerates E2 (Fig. 3 panel 5): noise
// impact on centroids per iteration across privacy levels.
func BenchmarkFig3Panel5NoiseImpact(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkFig3Panel6ProfileSearch regenerates E3 (Fig. 3 panel 6):
// Bob's subsequence-to-profile search.
func BenchmarkFig3Panel6ProfileSearch(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkQualityVsPrivacy regenerates E4: quality relative to
// centralized k-means across ε, heuristics on/off (claim 2 of Sec. I).
func BenchmarkQualityVsPrivacy(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkCostProjection regenerates E5b: projected per-participant
// costs of a full deployment (claim 3 of Sec. I).
func BenchmarkCostProjection(b *testing.B) { benchExperiment(b, "E5b") }

// BenchmarkGossipConvergence regenerates E6: exponential decay of the
// push-sum error (Sec. II.A premise).
func BenchmarkGossipConvergence(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkHeuristicsAblation regenerates E7: budget strategies ×
// smoothing (Sec. II.B quality-enhancing heuristics).
func BenchmarkHeuristicsAblation(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkChurnResilience regenerates E8: behaviour under faulty nodes
// (Sec. I challenge statement).
func BenchmarkChurnResilience(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkNoisePopulationScaling regenerates E9: ε scaling with
// population at constant noise ratio (Sec. III.B point 4).
func BenchmarkNoisePopulationScaling(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkGossipMessageBudget regenerates E10: messages-per-participant
// vs aggregation fidelity (Sec. III.B point 3).
func BenchmarkGossipMessageBudget(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkDamgardJurikOps regenerates E5a: the real per-operation
// crypto timings the demo displays ("measured beforehand", Sec. III.B).
// Each sub-benchmark is one operation at one key size.
func BenchmarkDamgardJurikOps(b *testing.B) {
	for _, bits := range []int{512, 1024, 2048} {
		tk, shares, err := damgardjurik.FixtureThresholdKey(bits, 1, 8, 5)
		if err != nil {
			b.Fatal(err)
		}
		sk, err := damgardjurik.FixturePrivateKey(bits, 1)
		if err != nil {
			b.Fatal(err)
		}
		m := big.NewInt(123456789)
		ct, err := tk.Encrypt(rand.Reader, m)
		if err != nil {
			b.Fatal(err)
		}
		ctSK, err := sk.Encrypt(rand.Reader, m)
		if err != nil {
			b.Fatal(err)
		}
		half := new(big.Int).ModInverse(big.NewInt(2), tk.PlaintextModulus())
		parts := make([]damgardjurik.PartialDecryption, 5)
		for i := 0; i < 5; i++ {
			parts[i], err = tk.PartialDecrypt(shares[i], ct)
			if err != nil {
				b.Fatal(err)
			}
		}

		b.Run(fmt.Sprintf("Encrypt/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tk.Encrypt(rand.Reader, m); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Add/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tk.Add(ct, ct); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("ScalarMulHalve/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tk.ScalarMul(ct, half); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Decrypt/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sk.Decrypt(ctSK); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("PartialDecrypt/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tk.PartialDecrypt(shares[0], ct); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Combine/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tk.Combine(parts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDamgardJurikFastPath compares the retained naive reference
// implementations against the precomputed fast paths, operation by
// operation (the ISSUE 2 acceptance gate: ≥2× on Encrypt and
// PartialDecrypt at ModulusBits=1024):
//
//   - Encrypt: naive r^{n^s} full-width exponentiation vs the fixed-base
//     windowed table over H = h^{n^s} with a short exponent;
//
//   - PartialDecrypt / Decrypt: direct mod-n^{s+1} exponentiation vs the
//     CRT split with exponent reduction (bit-identical results);
//
//   - Rerandomize: fresh exponentiation vs the precomputed randomizer
//     pool;
//
//   - Combine: per-partial exponentiations vs one simultaneous
//     multi-exponentiation with cached Lagrange coefficients.
//
//     go test -bench 'DamgardJurikFastPath' -benchtime=100x
func BenchmarkDamgardJurikFastPath(b *testing.B) {
	for _, bits := range []int{512, 1024} {
		tk, shares, err := damgardjurik.FixtureThresholdKey(bits, 1, 8, 5)
		if err != nil {
			b.Fatal(err)
		}
		sk, err := damgardjurik.FixturePrivateKey(bits, 1)
		if err != nil {
			b.Fatal(err)
		}
		ec, err := tk.NewEncContext(rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		pool := damgardjurik.NewRandomizerPool(ec, 512, nil)
		defer pool.Close()
		m := big.NewInt(123456789)
		ct, err := tk.Encrypt(rand.Reader, m)
		if err != nil {
			b.Fatal(err)
		}
		ctSK, err := sk.Encrypt(rand.Reader, m)
		if err != nil {
			b.Fatal(err)
		}
		parts := make([]damgardjurik.PartialDecryption, 5)
		for i := 0; i < 5; i++ {
			parts[i], err = tk.PartialDecrypt(shares[i], ct)
			if err != nil {
				b.Fatal(err)
			}
		}

		b.Run(fmt.Sprintf("Encrypt/naive/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tk.Encrypt(rand.Reader, m); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Encrypt/fast/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ec.Encrypt(rand.Reader, m); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("PartialDecrypt/naive/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tk.PartialDecryptNaive(shares[0], ct); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("PartialDecrypt/fast/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tk.PartialDecrypt(shares[0], ct); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Decrypt/naive/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sk.DecryptNaive(ctSK); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Decrypt/fast/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sk.Decrypt(ctSK); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Rerandomize/naive/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tk.Rerandomize(rand.Reader, ct); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Rerandomize/pooled/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pool.Rerandomize(ct); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Combine/naive/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tk.CombineNaive(parts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Combine/batched/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tk.Combine(parts); err != nil {
					b.Fatal(err)
				}
			}
		})

		// The decrypt-phase shape: one responder set opening a whole
		// pending-cipher vector. naive recomputes the Lagrange work per
		// cipher; context resolves the responder set once (CombineContext)
		// and replays the precomputed multiexp plan per cipher — the
		// in-protocol path of participant.decodeAll via CombineColumns.
		const vectorLen = 8
		cols := make([][]damgardjurik.PartialDecryption, vectorLen)
		for j := range cols {
			cv, err := tk.Encrypt(rand.Reader, big.NewInt(int64(1000+j)))
			if err != nil {
				b.Fatal(err)
			}
			cols[j] = make([]damgardjurik.PartialDecryption, 5)
			for i := 0; i < 5; i++ {
				cols[j][i], err = tk.PartialDecrypt(shares[i], cv)
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		indices := make([]int, 5)
		for i := range indices {
			indices[i] = cols[0][i].Index
		}
		b.Run(fmt.Sprintf("CombineVector/naive/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, col := range cols {
					if _, err := tk.CombineNaive(col); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("CombineVector/context/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx, err := tk.CombineContext(indices)
				if err != nil {
					b.Fatal(err)
				}
				for _, col := range cols {
					if _, err := tk.CombineWith(ctx, col); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// benchClusterEngine times full protocol runs through the public API on
// the accounted backend at population n with the given engine — the
// basis of the engine-scaling comparison (see BenchmarkEngine*).
func benchClusterEngine(b *testing.B, n int, engine string) {
	b.Helper()
	series, _, _ := chiaroscuro.SyntheticCER(n, 8, 1)
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		b.Fatal(err)
	}
	cfg := chiaroscuro.Config{
		K: 3, Epsilon: 50, Iterations: 2, Seed: 1,
		GossipRounds: 10, DecryptThreshold: 4,
		Engine: engine,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chiaroscuro.Cluster(series, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCycles1k / BenchmarkEngineSharded1k compare the
// sequential cycle engine against the sharded engine at a small
// population (cheap enough for CI smoke runs). The two engines produce
// bit-identical traces (see internal/core sharded tests); only
// wall-clock differs.
func BenchmarkEngineCycles1k(b *testing.B)  { benchClusterEngine(b, 1000, "cycles") }
func BenchmarkEngineSharded1k(b *testing.B) { benchClusterEngine(b, 1000, "sharded") }

// BenchmarkEngineCycles10k / BenchmarkEngineSharded10k are the paper-
// scale engine comparison: N=10k participants on the accounted backend.
// On a host with >=4 cores the sharded engine is expected to finish the
// same (bit-identical) simulation at least 2x faster than the
// sequential engine; on a single core the two are equivalent (the
// sharded scheduler degrades to the sequential one at Workers=1).
//
//	go test -bench 'Engine.*10k' -benchtime=1x
func BenchmarkEngineCycles10k(b *testing.B)  { benchClusterEngine(b, 10000, "cycles") }
func BenchmarkEngineSharded10k(b *testing.B) { benchClusterEngine(b, 10000, "sharded") }

// benchClusterScale is the large-population memory benchmark behind the
// ISSUE 5 acceptance gate: one full accounted sharded run at population
// n with flat-arena participant state and the zero-allocation gossip
// hot path. Track B/op and allocs/op across commits (BENCH_scale.json
// carries the committed baseline): the arena layout cut allocated
// bytes/op by well over 2× versus the per-node object-graph layout.
func benchClusterScale(b *testing.B, n int) {
	b.Helper()
	series, _, _ := chiaroscuro.SyntheticCER(n, benchcfg.ScaleDim, benchcfg.ScaleSeed)
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		b.Fatal(err)
	}
	cfg := chiaroscuro.Config{
		K: benchcfg.ScaleK, Epsilon: benchcfg.ScaleEpsilon,
		Iterations: benchcfg.ScaleIterations, Seed: benchcfg.ScaleSeed,
		GossipRounds: benchcfg.ScaleGossipRounds, DecryptThreshold: benchcfg.ScaleDecryptThreshold,
		Engine: benchcfg.ScaleEngine,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chiaroscuro.Cluster(series, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterScale100k is the headline scale benchmark (also run
// by the CI -bench-scale smoke at this population). A single pass
// allocates hundreds of MB and takes tens of seconds, so like the 1M
// smoke it is skipped in -short mode:
//
//	go test -bench 'ClusterScale100k' -benchtime=1x
func BenchmarkClusterScale100k(b *testing.B) {
	if testing.Short() {
		b.Skip("N=100k scale benchmark skipped in short mode")
	}
	benchClusterScale(b, 100_000)
}

// BenchmarkClusterScale1M is the million-participant smoke — the
// paper's target deployment scale in one accounted process. It needs
// several GB of RAM and minutes of wall-clock, so it is skipped in
// -short mode and not part of CI:
//
//	go test -bench 'ClusterScale1M' -benchtime=1x -timeout 60m
func BenchmarkClusterScale1M(b *testing.B) {
	if testing.Short() {
		b.Skip("N=1M smoke skipped in short mode")
	}
	benchClusterScale(b, 1_000_000)
}

// BenchmarkClusterEndToEnd times one full protocol run through the
// public API (accounted backend, demo-scale parameters).
func BenchmarkClusterEndToEnd(b *testing.B) {
	series, _, _ := chiaroscuro.SyntheticCER(200, 24, 1)
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		b.Fatal(err)
	}
	eps, _ := chiaroscuro.ScaleEpsilonForPopulation(1, 1000000, len(series))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chiaroscuro.Cluster(series, chiaroscuro.Config{
			K: 5, Epsilon: eps, Iterations: 4, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterRealCrypto times fully encrypted end-to-end runs — the
// configuration the demo disables for scale — at a 512-bit key (the
// smallest size the E5 cost tables measure), unpacked versus slot-packed.
// The packed run performs ~an-order-of-magnitude fewer encrypts,
// halvings and partial decryptions (see TestPackedDamgardJurikOpReduction
// for the exact OpCounts gate) and the wall-clock gap here is the
// end-to-end measurement of that reduction:
//
//	go test -bench 'ClusterRealCrypto' -benchtime=1x
func BenchmarkClusterRealCrypto(b *testing.B) {
	series, _, _ := chiaroscuro.SyntheticTumorGrowth(16, 10, 1)
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		b.Fatal(err)
	}
	for _, packed := range []bool{false, true} {
		name := "unpacked"
		if packed {
			name = "packed"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chiaroscuro.Cluster(series, chiaroscuro.Config{
					K: 2, Epsilon: 100, Iterations: 2, Seed: int64(i),
					Backend: chiaroscuro.BackendDamgardJurik, ModulusBits: 512,
					DecryptThreshold: 4, GossipRounds: 8, Packed: packed,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCentralizedKMeans times the non-private baseline for scale
// comparison with BenchmarkClusterEndToEnd.
func BenchmarkCentralizedKMeans(b *testing.B) {
	series, _, _ := chiaroscuro.SyntheticCER(200, 24, 1)
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chiaroscuro.CentralizedKMeans(series, 5, 20, int64(i), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileSearch times the interactive search primitive alone
// (Fig. 3 panel 6 latency).
func BenchmarkProfileSearch(b *testing.B) {
	profiles := make([][]float64, 8)
	for j := range profiles {
		p := make([]float64, 48)
		for t := range p {
			p[t] = float64(j) / 8 * float64(t%7)
		}
		profiles[j] = p
	}
	query := []float64{0.1, 0.4, 0.3, 0.2, 0.5, 0.6, 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chiaroscuro.FindClosestProfiles(profiles, query, 3); err != nil {
			b.Fatal(err)
		}
	}
}
